//! Per-SM read-only (texture) cache.
//!
//! The paper's benchmark (Radius-CUDA) binds the kd-tree, triangle
//! references and triangle data to CUDA *textures*; on the simulated
//! GT200-class machine those reads flow through per-SM texture caches,
//! which exist independently of the L1/L2 data caches that Table I
//! disables. Without this cache the scene working set saturates the 64
//! B/cycle DRAM system and the machine becomes bandwidth-bound, which
//! contradicts the paper's (memory-insensitive, branch-bound) baseline —
//! see Fig. 10, where PDOM gains nothing from an ideal memory system.
//!
//! The model is a classic set-associative, LRU, read-only cache. The host
//! marks cacheable regions (the "texture bindings"); everything else
//! (rays, results, traversal stacks) bypasses.

use serde::{Deserialize, Serialize};
use simt_isa::codec::{CodecError, Decoder, Encoder};

/// A set-associative read-only cache model.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ReadOnlyCache {
    line_bytes: u32,
    sets: usize,
    ways: usize,
    /// Per set: resident line addresses, most-recently-used first.
    tags: Vec<Vec<u64>>,
    /// Hits observed.
    pub hits: u64,
    /// Misses observed.
    pub misses: u64,
}

impl ReadOnlyCache {
    /// Creates a cache of `capacity_bytes` with `line_bytes` lines and
    /// `ways`-way associativity.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is degenerate (zero sizes, capacity not a
    /// multiple of `line_bytes * ways`, or non-power-of-two line size).
    pub fn new(capacity_bytes: u32, line_bytes: u32, ways: usize) -> Self {
        assert!(line_bytes.is_power_of_two() && line_bytes > 0);
        assert!(ways > 0);
        let lines = capacity_bytes / line_bytes;
        assert!(
            lines as usize >= ways && lines.is_multiple_of(ways as u32),
            "capacity must hold a whole number of sets"
        );
        let sets = (lines as usize) / ways;
        ReadOnlyCache {
            line_bytes,
            sets,
            ways,
            tags: vec![Vec::new(); sets],
            hits: 0,
            misses: 0,
        }
    }

    /// Line size in bytes.
    pub fn line_bytes(&self) -> u32 {
        self.line_bytes
    }

    /// The tag-array key of the line containing `addr` under space tag
    /// `tag`. Line numbers occupy the low 32 bits (a u32 byte address
    /// over a >1-byte line always fits), so the tag bits can never
    /// collide with another space's line number — and tag 0 keys are
    /// numerically identical to the historical untagged keys, keeping
    /// snapshot payloads stable.
    fn line_key(&self, tag: u8, addr: u32) -> u64 {
        u64::from(addr / self.line_bytes) | (u64::from(tag) << 32)
    }

    /// Looks up the line containing `addr`, filling it on a miss.
    /// Returns `true` on a hit.
    pub fn access(&mut self, addr: u32) -> bool {
        self.access_tagged(0, addr)
    }

    /// Like [`ReadOnlyCache::access`], but disambiguates the line with a
    /// small address-space tag. Callers that serve more than one address
    /// space through one tag array (the shared L2) use this so
    /// numerically equal addresses from different spaces cannot alias.
    pub fn access_tagged(&mut self, tag: u8, addr: u32) -> bool {
        let key = self.line_key(tag, addr);
        if self.lookup(key) {
            self.hits += 1;
            return true;
        }
        self.misses += 1;
        self.install(key);
        false
    }

    /// Looks up the line containing `addr` *without* filling on a miss.
    /// A hit refreshes LRU and counts like [`ReadOnlyCache::access`]; a
    /// miss counts but installs nothing. Callers that may not be able to
    /// track the fill (a full MSHR table) use this so a tag never claims
    /// residency for data that has not arrived.
    pub fn probe(&mut self, addr: u32) -> bool {
        let key = self.line_key(0, addr);
        if self.lookup(key) {
            self.hits += 1;
            return true;
        }
        self.misses += 1;
        false
    }

    /// Installs the line containing `addr` as MRU without touching the
    /// hit/miss counters — the second half of a
    /// [`ReadOnlyCache::probe`]-then-fill pair ([`ReadOnlyCache::access`]
    /// ≡ `probe` + `fill` on a miss).
    pub fn fill(&mut self, addr: u32) {
        let key = self.line_key(0, addr);
        self.install(key);
    }

    /// MRU-refreshing lookup of `key`; `true` on a hit.
    fn lookup(&mut self, key: u64) -> bool {
        let set = (key as u32 as usize) % self.sets;
        let entries = &mut self.tags[set];
        if let Some(pos) = entries.iter().position(|&t| t == key) {
            let t = entries.remove(pos);
            entries.insert(0, t);
            return true;
        }
        false
    }

    /// Installs `key` as MRU, evicting the set's LRU line if full.
    fn install(&mut self, key: u64) {
        let set = (key as u32 as usize) % self.sets;
        let entries = &mut self.tags[set];
        entries.insert(0, key);
        if entries.len() > self.ways {
            entries.pop();
        }
    }

    /// Hit rate so far.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Clears contents and counters.
    pub fn reset(&mut self) {
        self.tags.iter_mut().for_each(Vec::clear);
        self.hits = 0;
        self.misses = 0;
    }

    /// Serializes the cache contents (per-set tag stacks, MRU order
    /// preserved) and hit/miss counters for a simulator checkpoint.
    /// Geometry is configuration and is re-derived on restore.
    pub fn encode_state(&self, enc: &mut Encoder) {
        enc.put_usize(self.tags.len());
        for set in &self.tags {
            enc.put_u64_slice(set);
        }
        enc.put_u64(self.hits);
        enc.put_u64(self.misses);
    }

    /// Restores state previously written by
    /// [`ReadOnlyCache::encode_state`] into a cache of identical geometry.
    ///
    /// # Errors
    ///
    /// Returns a [`CodecError`] on truncated input or when the set count
    /// disagrees with this cache's geometry.
    pub fn restore_state(&mut self, dec: &mut Decoder<'_>) -> Result<(), CodecError> {
        let sets = dec.take_len(8)?;
        if sets != self.tags.len() {
            return Err(CodecError::BadLength {
                len: sets as u64,
                remaining: self.tags.len(),
            });
        }
        for set in &mut self.tags {
            *set = dec.take_u64_vec()?;
        }
        self.hits = dec.take_u64()?;
        self.misses = dec.take_u64()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn repeated_access_hits() {
        let mut c = ReadOnlyCache::new(1024, 64, 4);
        assert!(!c.access(100));
        assert!(c.access(100));
        assert!(c.access(96), "same 64 B line");
        assert_eq!(c.hits, 2);
        assert_eq!(c.misses, 1);
    }

    #[test]
    fn capacity_eviction_is_lru() {
        // 4 lines total, fully associative (1 set × 4 ways).
        let mut c = ReadOnlyCache::new(256, 64, 4);
        for i in 0..4u32 {
            assert!(!c.access(i * 64));
        }
        // Touch line 0 to make it MRU, then insert a 5th line.
        assert!(c.access(0));
        assert!(!c.access(4 * 64));
        // Line 1 (LRU) was evicted; line 0 survives.
        assert!(c.access(0));
        assert!(!c.access(64));
    }

    #[test]
    fn sets_partition_addresses() {
        // 2 sets × 1 way of 64 B: lines alternate sets.
        let mut c = ReadOnlyCache::new(128, 64, 1);
        assert!(!c.access(0)); // set 0
        assert!(!c.access(64)); // set 1
        assert!(c.access(0), "set 1 fill must not evict set 0");
    }

    #[test]
    fn reset_clears_everything() {
        let mut c = ReadOnlyCache::new(1024, 64, 4);
        c.access(0);
        c.access(0);
        c.reset();
        assert_eq!(c.hits + c.misses, 0);
        assert!(!c.access(0));
    }

    #[test]
    fn space_tags_do_not_alias() {
        let mut c = ReadOnlyCache::new(1024, 64, 4);
        assert!(!c.access_tagged(0, 128));
        // Same numeric address under another space tag: distinct line.
        assert!(!c.access_tagged(1, 128));
        assert!(c.access_tagged(0, 128));
        assert!(c.access_tagged(1, 128));
        // Tag 0 is the plain untagged key.
        assert!(c.access(128));
        assert_eq!((c.hits, c.misses), (3, 2));
    }

    #[test]
    fn probe_counts_but_never_installs() {
        let mut c = ReadOnlyCache::new(1024, 64, 4);
        assert!(!c.probe(0));
        assert!(!c.probe(0), "a probe miss must not install the tag");
        assert_eq!((c.hits, c.misses), (0, 2));
        c.fill(0);
        assert!(c.probe(0));
        assert_eq!((c.hits, c.misses), (1, 2), "fill leaves counters alone");
        // probe + fill on a miss is exactly one `access`.
        let mut via_access = ReadOnlyCache::new(1024, 64, 4);
        assert!(!via_access.access(0));
        assert!(via_access.access(0));
        assert_eq!(via_access.hits, 1);
        assert_eq!(via_access.misses, 1);
    }

    #[test]
    fn hit_rate_tracks() {
        let mut c = ReadOnlyCache::new(1024, 64, 4);
        assert_eq!(c.hit_rate(), 0.0);
        c.access(0);
        c.access(0);
        assert!((c.hit_rate() - 0.5).abs() < 1e-9);
    }
}
