//! Warp-level memory coalescing.
//!
//! Off-chip accesses by the lanes of a warp are merged into the minimal set
//! of aligned segments (64 bytes in the paper's configuration); each
//! distinct segment becomes one memory transaction. Divergent (scattered)
//! access patterns therefore cost proportionally more bandwidth — one of the
//! effects the μ-kernel transformation improves ("improved memory
//! coalescing", paper §VII).

/// Result of coalescing one warp access.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CoalesceResult {
    /// Base addresses of the distinct segments touched, sorted ascending.
    pub segments: Vec<u32>,
    /// Total bytes actually requested by the lanes (not segment bytes).
    pub requested_bytes: u64,
}

impl CoalesceResult {
    /// Number of memory transactions generated.
    pub fn transactions(&self) -> usize {
        self.segments.len()
    }

    /// Bytes moved on the bus (whole segments).
    pub fn bus_bytes(&self, segment_bytes: u32) -> u64 {
        self.segments.len() as u64 * u64::from(segment_bytes)
    }
}

/// Coalesces per-lane accesses of `bytes_per_lane` at `addresses` into
/// aligned segments of `segment_bytes`.
///
/// Accesses that straddle a segment boundary contribute to both segments
/// (possible for 16-byte `v4` accesses that are not 16-byte aligned).
///
/// # Panics
///
/// Panics if `segment_bytes` is zero or not a power of two.
pub fn coalesce_segments(
    addresses: &[u32],
    bytes_per_lane: u32,
    segment_bytes: u32,
) -> CoalesceResult {
    assert!(
        segment_bytes.is_power_of_two(),
        "segment size must be a power of two"
    );
    let mask = !(segment_bytes - 1);
    let mut segments: Vec<u32> = Vec::with_capacity(addresses.len());
    for &a in addresses {
        let first = a & mask;
        let last = (a + bytes_per_lane - 1) & mask;
        segments.push(first);
        if last != first {
            segments.push(last);
        }
    }
    segments.sort_unstable();
    segments.dedup();
    CoalesceResult {
        segments,
        requested_bytes: addresses.len() as u64 * u64::from(bytes_per_lane),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn fully_coalesced_warp_is_one_transaction() {
        // 16 lanes × 4 B covering one 64 B segment.
        let addrs: Vec<u32> = (0..16).map(|i| 256 + i * 4).collect();
        let r = coalesce_segments(&addrs, 4, 64);
        assert_eq!(r.transactions(), 1);
        assert_eq!(r.segments, vec![256]);
        assert_eq!(r.requested_bytes, 64);
    }

    #[test]
    fn warp_spanning_two_segments() {
        let addrs: Vec<u32> = (0..32).map(|i| i * 4).collect(); // 128 B
        let r = coalesce_segments(&addrs, 4, 64);
        assert_eq!(r.transactions(), 2);
        assert_eq!(r.segments, vec![0, 64]);
    }

    #[test]
    fn fully_scattered_warp_is_one_transaction_per_lane() {
        let addrs: Vec<u32> = (0..32).map(|i| i * 1024).collect();
        let r = coalesce_segments(&addrs, 4, 64);
        assert_eq!(r.transactions(), 32);
    }

    #[test]
    fn duplicate_addresses_merge() {
        let r = coalesce_segments(&[128, 128, 132, 160], 4, 64);
        assert_eq!(r.transactions(), 1);
    }

    #[test]
    fn straddling_v4_touches_both_segments() {
        // A 16-byte access at 56 covers [56, 72) -> segments 0 and 64.
        let r = coalesce_segments(&[56], 16, 64);
        assert_eq!(r.segments, vec![0, 64]);
    }

    #[test]
    fn empty_access_produces_nothing() {
        let r = coalesce_segments(&[], 4, 64);
        assert_eq!(r.transactions(), 0);
        assert_eq!(r.requested_bytes, 0);
    }

    proptest! {
        #[test]
        fn transactions_bounded(addrs in proptest::collection::vec(0u32..1_000_000, 0..32)) {
            let aligned: Vec<u32> = addrs.iter().map(|a| a & !3).collect();
            let r = coalesce_segments(&aligned, 4, 64);
            // Never more than one segment per lane for 4 B accesses...
            prop_assert!(r.transactions() <= aligned.len());
            // ...and segments are unique and sorted.
            let mut s = r.segments.clone();
            s.dedup();
            prop_assert_eq!(&s, &r.segments);
            let mut sorted = r.segments.clone();
            sorted.sort_unstable();
            prop_assert_eq!(sorted, r.segments);
        }

        #[test]
        fn every_lane_covered(addrs in proptest::collection::vec(0u32..100_000, 1..32)) {
            let aligned: Vec<u32> = addrs.iter().map(|a| a & !3).collect();
            let r = coalesce_segments(&aligned, 4, 64);
            for a in &aligned {
                prop_assert!(r.segments.contains(&(a & !63)));
            }
        }
    }
}
