//! Per-SM miss-status holding registers.
//!
//! An [`MshrTable`] tracks the L1 lines with an in-flight fill. A second
//! miss to a tracked line *merges*: it issues no new fabric request and
//! instead waits for the outstanding fill. The table bounds the number of
//! simultaneously outstanding fills; when it is full, further misses
//! bypass merging (counted as `stalls`) but still issue their request, so
//! no access is ever lost — the bound only costs merge opportunities and
//! models the back-pressure real MSHR files exert.
//!
//! Fill times are resolved in phase B: an entry is allocated during phase
//! A with [`FILL_UNRESOLVED`], then stamped with the servicing request's
//! completion cycle when the owning access drains. Entries whose fill has
//! completed are purged lazily at the next probe. Merges always reference
//! an entry allocated by an *earlier* access (earlier cycle, or earlier in
//! issue order within the same cycle), so draining accesses in issue order
//! guarantees every merge reads a concrete fill time.

use simt_isa::codec::{CodecError, Decoder, Encoder};

/// Fill time of an entry allocated this cycle, before its owning request
/// has been serviced in phase B.
pub const FILL_UNRESOLVED: u64 = u64::MAX;

/// One outstanding L1 fill.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct MshrEntry {
    /// Base address of the missing L1 line.
    line: u32,
    /// Cycle the fill completes, or [`FILL_UNRESOLVED`].
    fill_ready: u64,
}

/// A bounded table of outstanding L1 misses (one entry per line).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MshrTable {
    capacity: usize,
    entries: Vec<MshrEntry>,
    /// Same-line misses merged into an outstanding entry.
    pub merges: u64,
    /// Misses that could not allocate (table full) and bypassed merging.
    pub stalls: u64,
}

impl MshrTable {
    /// Creates an empty table with room for `capacity` outstanding fills.
    pub fn new(capacity: usize) -> Self {
        MshrTable {
            capacity: capacity.max(1),
            entries: Vec::new(),
            merges: 0,
            stalls: 0,
        }
    }

    /// Outstanding fills currently tracked.
    pub fn in_flight(&self) -> usize {
        self.entries.len()
    }

    /// Drops entries whose fill completed at or before `now`. Unresolved
    /// entries (allocated this cycle) always survive.
    pub fn purge(&mut self, now: u64) {
        self.entries.retain(|e| e.fill_ready > now);
    }

    /// The outstanding entry for `line`, if any: `Some(fill_ready)`.
    pub fn lookup(&self, line: u32) -> Option<u64> {
        self.entries
            .iter()
            .find(|e| e.line == line)
            .map(|e| e.fill_ready)
    }

    /// Whether a new miss can allocate an entry.
    pub fn has_room(&self) -> bool {
        self.entries.len() < self.capacity
    }

    /// Allocates an unresolved entry for `line`. Callers must have checked
    /// [`MshrTable::lookup`] (no duplicate entries) and
    /// [`MshrTable::has_room`].
    pub fn alloc(&mut self, line: u32) {
        debug_assert!(self.lookup(line).is_none(), "duplicate MSHR entry");
        debug_assert!(self.has_room(), "MSHR overflow");
        self.entries.push(MshrEntry {
            line,
            fill_ready: FILL_UNRESOLVED,
        });
    }

    /// Counts a merge into an outstanding entry.
    pub fn note_merge(&mut self) {
        self.merges += 1;
    }

    /// Counts a full-table bypass.
    pub fn note_stall(&mut self) {
        self.stalls += 1;
    }

    /// Stamps the unresolved entries for `lines` with their fill
    /// completion cycle (phase B, once the carrying request is serviced).
    /// Entries that already have a concrete time keep it: a line is filled
    /// by exactly one request.
    pub fn set_fill(&mut self, lines: &[u32], ready: u64) {
        for e in &mut self.entries {
            if e.fill_ready == FILL_UNRESOLVED && lines.contains(&e.line) {
                e.fill_ready = ready;
            }
        }
    }

    /// The latest fill-completion cycle among `lines` — the wake-up floor
    /// of an access that merged into them. Lines with no entry (already
    /// purged: the fill completed in an earlier cycle) contribute nothing.
    ///
    /// Callers resolve fills before reading floors, so an unresolved time
    /// can never leak into a wake-up; the debug assertion pins that.
    pub fn wait_floor(&self, lines: &[u32]) -> u64 {
        let mut floor = 0;
        for &l in lines {
            if let Some(t) = self.lookup(l) {
                debug_assert_ne!(t, FILL_UNRESOLVED, "merge read before fill resolved");
                if t != FILL_UNRESOLVED {
                    floor = floor.max(t);
                }
            }
        }
        floor
    }

    /// Drops unresolved entries (abort path: the owning accesses were
    /// discarded, so their fills will never be stamped).
    pub fn discard_unresolved(&mut self) {
        self.entries.retain(|e| e.fill_ready != FILL_UNRESOLVED);
    }

    /// Clears entries and counters.
    pub fn reset(&mut self) {
        self.entries.clear();
        self.merges = 0;
        self.stalls = 0;
    }

    /// Serializes the outstanding entries and counters for a simulator
    /// checkpoint. Capacity is configuration and is re-derived on restore.
    pub fn encode_state(&self, enc: &mut Encoder) {
        enc.put_usize(self.entries.len());
        for e in &self.entries {
            enc.put_u32(e.line);
            enc.put_u64(e.fill_ready);
        }
        enc.put_u64(self.merges);
        enc.put_u64(self.stalls);
    }

    /// Restores state previously written by [`MshrTable::encode_state`]
    /// into a table of the same capacity.
    ///
    /// # Errors
    ///
    /// Returns a [`CodecError`] on truncated input or when the entry count
    /// exceeds this table's capacity (a snapshot from a different
    /// configuration).
    pub fn restore_state(&mut self, dec: &mut Decoder<'_>) -> Result<(), CodecError> {
        let n = dec.take_len(12)?;
        if n > self.capacity {
            return Err(CodecError::BadLength {
                len: n as u64,
                remaining: self.capacity,
            });
        }
        self.entries = (0..n)
            .map(|_| {
                Ok(MshrEntry {
                    line: dec.take_u32()?,
                    fill_ready: dec.take_u64()?,
                })
            })
            .collect::<Result<_, CodecError>>()?;
        self.merges = dec.take_u64()?;
        self.stalls = dec.take_u64()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_lookup_purge_cycle() {
        let mut m = MshrTable::new(2);
        m.alloc(64);
        assert_eq!(m.lookup(64), Some(FILL_UNRESOLVED));
        m.set_fill(&[64], 100);
        assert_eq!(m.lookup(64), Some(100));
        m.purge(99);
        assert_eq!(m.in_flight(), 1, "fill at 100 still outstanding at 99");
        m.purge(100);
        assert_eq!(m.in_flight(), 0);
    }

    #[test]
    fn capacity_bounds_allocation() {
        let mut m = MshrTable::new(1);
        m.alloc(0);
        assert!(!m.has_room());
        m.note_stall();
        assert_eq!(m.stalls, 1);
    }

    #[test]
    fn wait_floor_takes_latest_fill() {
        let mut m = MshrTable::new(4);
        m.alloc(0);
        m.alloc(64);
        m.set_fill(&[0], 50);
        m.set_fill(&[64], 80);
        assert_eq!(m.wait_floor(&[0, 64]), 80);
        // A purged (long-completed) line no longer gates anything.
        m.purge(60);
        assert_eq!(m.wait_floor(&[0, 64]), 80);
    }

    #[test]
    fn set_fill_never_restamps() {
        let mut m = MshrTable::new(2);
        m.alloc(0);
        m.set_fill(&[0], 10);
        m.set_fill(&[0], 99);
        assert_eq!(m.lookup(0), Some(10));
    }

    #[test]
    fn discard_unresolved_keeps_concrete_fills() {
        let mut m = MshrTable::new(4);
        m.alloc(0);
        m.alloc(64);
        m.set_fill(&[0], 10);
        m.discard_unresolved();
        assert_eq!(m.lookup(0), Some(10));
        assert_eq!(m.lookup(64), None);
    }

    #[test]
    fn codec_round_trip() {
        let mut m = MshrTable::new(4);
        m.alloc(128);
        m.set_fill(&[128], 7);
        m.alloc(256);
        m.note_merge();
        m.note_stall();
        let mut enc = Encoder::new();
        m.encode_state(&mut enc);
        let bytes = enc.into_bytes();
        let mut restored = MshrTable::new(4);
        restored
            .restore_state(&mut Decoder::new(&bytes))
            .expect("round trip");
        assert_eq!(restored, m);

        // A snapshot holding more entries than the table fits is rejected.
        let mut tiny = MshrTable::new(1);
        assert!(tiny.restore_state(&mut Decoder::new(&bytes)).is_err());
    }
}
