//! Memory-system configuration.

use serde::{Deserialize, Serialize};

/// Configuration of the memory subsystem.
///
/// [`MemConfig::fx5800`] reproduces paper Table I: 8 memory modules at
/// 8 bytes/cycle, no L1/L2 caching.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MemConfig {
    /// Number of off-chip memory modules (DRAM channels).
    pub num_modules: usize,
    /// Peak bandwidth per module, bytes per cycle.
    pub bytes_per_cycle: u32,
    /// Fixed DRAM access latency in cycles (row access + interconnect).
    pub dram_latency: u32,
    /// DRAM-to-shader clock ratio: the modules move `bytes_per_cycle`
    /// bytes per *DRAM* cycle (FX5800: ~1.6 GHz effective GDDR3 vs the
    /// 1.3 GHz shader clock → 1.23, giving the card's real 78 B per
    /// shader cycle).
    pub dram_clock_ratio: f64,
    /// Coalescing granularity in bytes (one transaction per touched segment).
    pub segment_bytes: u32,
    /// Number of banks in each on-chip scratchpad (shared/spawn).
    pub shared_banks: usize,
    /// Pipeline latency of an on-chip access in cycles.
    pub shared_latency: u32,
    /// Model bank conflicts on the spawn-memory space.
    ///
    /// The paper first evaluates with conflicts eliminated ("future
    /// programming models or compiler optimization", §VII / Fig. 7) and then
    /// with conflicts enabled (Fig. 9).
    pub spawn_bank_conflicts: bool,
    /// Ideal memory: every access completes next cycle and consumes no
    /// bandwidth (paper Fig. 10 "theoretical" configurations).
    pub ideal: bool,
    /// Charge warp admission one spawn-space read per admitted lane (the
    /// admission stage's state-pointer read-back, occupying the SM's
    /// load-store port). Off by default on *every* preset so that the
    /// paper's Table I machine keeps its legacy free admission and the
    /// cache-ablation machines differ only in cache capacity; enable it
    /// explicitly to study admission-stage pressure on its own.
    #[serde(default)]
    pub spawn_admission_reads: bool,
    /// Per-SM read-only (texture) cache capacity in bytes; 0 disables.
    ///
    /// The benchmark binds scene data to textures; GT200-class texture
    /// caches exist independently of the L1/L2 data caches Table I
    /// disables.
    pub tex_cache_bytes: u32,
    /// Texture-cache line size in bytes.
    pub tex_line_bytes: u32,
    /// Texture-cache associativity.
    pub tex_ways: usize,
    /// Texture-cache hit latency in cycles.
    pub tex_hit_latency: u32,
    /// Per-SM L1 data-cache capacity in bytes; 0 disables the L1 and
    /// keeps the legacy flat fabric (the paper's Table I machine).
    ///
    /// The L1 is a timing-only model: functional values always flow
    /// through the fabric backing stores in phase B, so the cache is
    /// non-coherent exactly like a real GPU L1 (stores write through
    /// without allocating and never invalidate remote SMs' tags).
    #[serde(default)]
    pub l1_bytes: u32,
    /// L1 line size in bytes (power of two).
    #[serde(default = "default_l1_line_bytes")]
    pub l1_line_bytes: u32,
    /// L1 associativity.
    #[serde(default = "default_l1_ways")]
    pub l1_ways: usize,
    /// L1 hit latency in cycles.
    #[serde(default = "default_l1_hit_latency")]
    pub l1_hit_latency: u32,
    /// MSHR entries per SM: same-line misses merge into an outstanding
    /// entry; when the table is full further misses bypass merging
    /// (counted as `mshr_stalls`) but still issue their request.
    #[serde(default = "default_l1_mshr_entries")]
    pub l1_mshr_entries: usize,
    /// Shared L2 capacity in bytes, sliced evenly across the memory
    /// partitions (one slice per DRAM module); 0 disables the L2 and
    /// the banked SM↔partition interconnect.
    #[serde(default)]
    pub l2_bytes: u32,
    /// L2 line size in bytes (power of two).
    #[serde(default = "default_l2_line_bytes")]
    pub l2_line_bytes: u32,
    /// L2 associativity.
    #[serde(default = "default_l2_ways")]
    pub l2_ways: usize,
    /// L2 hit latency in cycles (from interconnect arrival).
    #[serde(default = "default_l2_hit_latency")]
    pub l2_hit_latency: u32,
    /// SM↔partition interconnect traversal latency in cycles.
    #[serde(default = "default_icnt_latency")]
    pub icnt_latency: u32,
    /// Cycles one coalesced segment occupies its interconnect bank.
    #[serde(default = "default_icnt_flit_cycles")]
    pub icnt_flit_cycles: u32,
}

fn default_l1_line_bytes() -> u32 {
    64
}
fn default_l1_ways() -> usize {
    4
}
fn default_l1_hit_latency() -> u32 {
    12
}
fn default_l1_mshr_entries() -> usize {
    8
}
fn default_l2_line_bytes() -> u32 {
    64
}
fn default_l2_ways() -> usize {
    8
}
fn default_l2_hit_latency() -> u32 {
    60
}
fn default_icnt_latency() -> u32 {
    8
}
fn default_icnt_flit_cycles() -> u32 {
    2
}

impl MemConfig {
    /// The paper's simulated configuration (Table I): 8 modules ×
    /// 8 bytes/cycle, 16-bank on-chip memory, no caches.
    ///
    /// Transactions are 32 bytes — the GT200 generation's small-transaction
    /// granularity for scattered access — so a fully divergent warp pays
    /// 32× the bandwidth of a broadcast, not 64×.
    pub fn fx5800() -> Self {
        MemConfig {
            num_modules: 8,
            bytes_per_cycle: 8,
            dram_latency: 200,
            dram_clock_ratio: 1.23,
            segment_bytes: 32,
            shared_banks: 16,
            shared_latency: 10,
            spawn_bank_conflicts: false,
            ideal: false,
            spawn_admission_reads: false,
            tex_cache_bytes: 32 * 1024,
            tex_line_bytes: 32,
            tex_ways: 4,
            tex_hit_latency: 12,
            l1_bytes: 0,
            l1_line_bytes: default_l1_line_bytes(),
            l1_ways: default_l1_ways(),
            l1_hit_latency: default_l1_hit_latency(),
            l1_mshr_entries: default_l1_mshr_entries(),
            l2_bytes: 0,
            l2_line_bytes: default_l2_line_bytes(),
            l2_ways: default_l2_ways(),
            l2_hit_latency: default_l2_hit_latency(),
            icnt_latency: default_icnt_latency(),
            icnt_flit_cycles: default_icnt_flit_cycles(),
        }
    }

    /// A GT200-class cached variant of [`MemConfig::fx5800`]: 16 KiB
    /// per-SM L1 (64 B lines, 4-way, 8 MSHRs) and a 512 KiB shared L2
    /// sliced across the 8 partitions behind the banked interconnect.
    /// This is the configuration the cache-ablation figure, CI matrix,
    /// and benchmark harness enable; the default stays flat.
    pub fn fx5800_cached() -> Self {
        let mut c = MemConfig::fx5800();
        c.l1_bytes = 16 * 1024;
        c.l2_bytes = 512 * 1024;
        c
    }

    /// Ideal-memory variant of this configuration.
    pub fn with_ideal(mut self, ideal: bool) -> Self {
        self.ideal = ideal;
        self
    }

    /// Enables a per-SM L1 of `bytes` capacity (0 disables), keeping the
    /// configured line size, associativity, and MSHR count.
    pub fn with_l1(mut self, bytes: u32) -> Self {
        self.l1_bytes = bytes;
        self
    }

    /// Enables a shared L2 of `bytes` capacity (0 disables), keeping the
    /// configured line size and associativity.
    pub fn with_l2(mut self, bytes: u32) -> Self {
        self.l2_bytes = bytes;
        self
    }

    /// Whether the per-SM L1 data cache is modeled (ideal memory
    /// short-circuits every cache level).
    pub fn l1_enabled(&self) -> bool {
        self.l1_bytes > 0 && !self.ideal
    }

    /// Whether the shared L2 (and with it the banked SM↔partition
    /// interconnect) is modeled.
    pub fn l2_enabled(&self) -> bool {
        self.l2_bytes > 0 && !self.ideal
    }

    /// Whether phase B must run the batched interconnect-arbitration
    /// drain instead of the legacy per-request path.
    pub fn hierarchy_enabled(&self) -> bool {
        self.l2_enabled()
    }

    /// Number of memory partitions (one L2 slice + interconnect bank in
    /// front of each DRAM module).
    pub fn partitions(&self) -> usize {
        self.num_modules
    }

    /// Enables/disables spawn-memory bank-conflict modeling.
    pub fn with_spawn_bank_conflicts(mut self, enabled: bool) -> Self {
        self.spawn_bank_conflicts = enabled;
        self
    }

    /// Enables/disables the admission-stage spawn-space read charge.
    pub fn with_spawn_admission_reads(mut self, enabled: bool) -> Self {
        self.spawn_admission_reads = enabled;
        self
    }

    /// Shader cycles a module needs to transfer one coalesced segment
    /// (fractional: the modules run at the DRAM clock).
    pub fn segment_service_cycles(&self) -> f64 {
        f64::from(self.segment_bytes) / (f64::from(self.bytes_per_cycle) * self.dram_clock_ratio)
    }

    /// The memory module serving byte address `addr`: segments interleave
    /// round-robin across modules at `segment_bytes` granularity.
    pub fn module_of(&self, addr: u32) -> usize {
        ((addr / self.segment_bytes) as usize) % self.num_modules
    }
}

impl Default for MemConfig {
    fn default() -> Self {
        MemConfig::fx5800()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fx5800_matches_table_1() {
        let c = MemConfig::fx5800();
        assert_eq!(c.num_modules, 8);
        assert_eq!(c.bytes_per_cycle, 8);
        assert!(!c.ideal);
    }

    #[test]
    fn segment_service_cycles() {
        let c = MemConfig::fx5800();
        // 32 B / (8 B per DRAM cycle * 1.23) ≈ 3.25 shader cycles.
        assert!((c.segment_service_cycles() - 3.252).abs() < 0.01);
    }

    #[test]
    fn builder_style_toggles() {
        let c = MemConfig::fx5800()
            .with_ideal(true)
            .with_spawn_bank_conflicts(true);
        assert!(c.ideal);
        assert!(c.spawn_bank_conflicts);
    }

    #[test]
    fn caches_default_off_and_toggle_on() {
        let c = MemConfig::fx5800();
        assert!(!c.l1_enabled() && !c.l2_enabled() && !c.hierarchy_enabled());
        let c = MemConfig::fx5800().with_l1(16 * 1024);
        assert!(c.l1_enabled() && !c.hierarchy_enabled());
        let c = MemConfig::fx5800_cached();
        assert!(c.l1_enabled() && c.l2_enabled() && c.hierarchy_enabled());
        // Ideal memory short-circuits every level.
        assert!(!MemConfig::fx5800_cached().with_ideal(true).l1_enabled());
    }

    #[test]
    fn cached_preset_only_adds_capacity() {
        // The cached preset differs from the flat Table I machine only in
        // the two capacity knobs: geometry/latency defaults are shared, so
        // ablations compare capacity, not incidental parameter drift.
        let cached = MemConfig::fx5800_cached();
        let flat = MemConfig::fx5800()
            .with_l1(cached.l1_bytes)
            .with_l2(cached.l2_bytes);
        assert_eq!(cached, flat);
        assert_eq!(cached.partitions(), cached.num_modules);
        // In particular the admission-read charge must not ride along with
        // the cache knobs: it has its own toggle.
        assert!(!cached.spawn_admission_reads);
        assert!(
            MemConfig::fx5800()
                .with_spawn_admission_reads(true)
                .spawn_admission_reads
        );
    }
}
