//! Memory-system configuration.

use serde::{Deserialize, Serialize};

/// Configuration of the memory subsystem.
///
/// [`MemConfig::fx5800`] reproduces paper Table I: 8 memory modules at
/// 8 bytes/cycle, no L1/L2 caching.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MemConfig {
    /// Number of off-chip memory modules (DRAM channels).
    pub num_modules: usize,
    /// Peak bandwidth per module, bytes per cycle.
    pub bytes_per_cycle: u32,
    /// Fixed DRAM access latency in cycles (row access + interconnect).
    pub dram_latency: u32,
    /// DRAM-to-shader clock ratio: the modules move `bytes_per_cycle`
    /// bytes per *DRAM* cycle (FX5800: ~1.6 GHz effective GDDR3 vs the
    /// 1.3 GHz shader clock → 1.23, giving the card's real 78 B per
    /// shader cycle).
    pub dram_clock_ratio: f64,
    /// Coalescing granularity in bytes (one transaction per touched segment).
    pub segment_bytes: u32,
    /// Number of banks in each on-chip scratchpad (shared/spawn).
    pub shared_banks: usize,
    /// Pipeline latency of an on-chip access in cycles.
    pub shared_latency: u32,
    /// Model bank conflicts on the spawn-memory space.
    ///
    /// The paper first evaluates with conflicts eliminated ("future
    /// programming models or compiler optimization", §VII / Fig. 7) and then
    /// with conflicts enabled (Fig. 9).
    pub spawn_bank_conflicts: bool,
    /// Ideal memory: every access completes next cycle and consumes no
    /// bandwidth (paper Fig. 10 "theoretical" configurations).
    pub ideal: bool,
    /// Per-SM read-only (texture) cache capacity in bytes; 0 disables.
    ///
    /// The benchmark binds scene data to textures; GT200-class texture
    /// caches exist independently of the L1/L2 data caches Table I
    /// disables.
    pub tex_cache_bytes: u32,
    /// Texture-cache line size in bytes.
    pub tex_line_bytes: u32,
    /// Texture-cache associativity.
    pub tex_ways: usize,
    /// Texture-cache hit latency in cycles.
    pub tex_hit_latency: u32,
}

impl MemConfig {
    /// The paper's simulated configuration (Table I): 8 modules ×
    /// 8 bytes/cycle, 16-bank on-chip memory, no caches.
    ///
    /// Transactions are 32 bytes — the GT200 generation's small-transaction
    /// granularity for scattered access — so a fully divergent warp pays
    /// 32× the bandwidth of a broadcast, not 64×.
    pub fn fx5800() -> Self {
        MemConfig {
            num_modules: 8,
            bytes_per_cycle: 8,
            dram_latency: 200,
            dram_clock_ratio: 1.23,
            segment_bytes: 32,
            shared_banks: 16,
            shared_latency: 10,
            spawn_bank_conflicts: false,
            ideal: false,
            tex_cache_bytes: 32 * 1024,
            tex_line_bytes: 32,
            tex_ways: 4,
            tex_hit_latency: 12,
        }
    }

    /// Ideal-memory variant of this configuration.
    pub fn with_ideal(mut self, ideal: bool) -> Self {
        self.ideal = ideal;
        self
    }

    /// Enables/disables spawn-memory bank-conflict modeling.
    pub fn with_spawn_bank_conflicts(mut self, enabled: bool) -> Self {
        self.spawn_bank_conflicts = enabled;
        self
    }

    /// Shader cycles a module needs to transfer one coalesced segment
    /// (fractional: the modules run at the DRAM clock).
    pub fn segment_service_cycles(&self) -> f64 {
        f64::from(self.segment_bytes) / (f64::from(self.bytes_per_cycle) * self.dram_clock_ratio)
    }

    /// The memory module serving byte address `addr`: segments interleave
    /// round-robin across modules at `segment_bytes` granularity.
    pub fn module_of(&self, addr: u32) -> usize {
        ((addr / self.segment_bytes) as usize) % self.num_modules
    }
}

impl Default for MemConfig {
    fn default() -> Self {
        MemConfig::fx5800()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fx5800_matches_table_1() {
        let c = MemConfig::fx5800();
        assert_eq!(c.num_modules, 8);
        assert_eq!(c.bytes_per_cycle, 8);
        assert!(!c.ideal);
    }

    #[test]
    fn segment_service_cycles() {
        let c = MemConfig::fx5800();
        // 32 B / (8 B per DRAM cycle * 1.23) ≈ 3.25 shader cycles.
        assert!((c.segment_service_cycles() - 3.252).abs() < 0.01);
    }

    #[test]
    fn builder_style_toggles() {
        let c = MemConfig::fx5800()
            .with_ideal(true)
            .with_spawn_bank_conflicts(true);
        assert!(c.ideal);
        assert!(c.spawn_bank_conflicts);
    }
}
