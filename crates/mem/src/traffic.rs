//! Traffic accounting per address space (regenerates paper Table IV).

use serde::{Deserialize, Serialize};
use simt_isa::codec::{CodecError, Decoder, Encoder};
use simt_isa::Space;
use std::fmt;

/// Byte and transaction counters for one address space.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SpaceTraffic {
    /// Bytes requested by loads.
    pub bytes_read: u64,
    /// Bytes requested by stores.
    pub bytes_written: u64,
    /// Coalesced transactions issued to memory modules (off-chip spaces).
    pub transactions: u64,
    /// Warp-level accesses.
    pub accesses: u64,
    /// Extra serialization passes caused by bank conflicts (on-chip spaces).
    pub bank_conflict_passes: u64,
}

impl SpaceTraffic {
    /// Total bytes moved (read + written).
    pub fn total_bytes(&self) -> u64 {
        self.bytes_read + self.bytes_written
    }
}

/// Traffic statistics for all address spaces.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TrafficStats {
    global: SpaceTraffic,
    shared: SpaceTraffic,
    local: SpaceTraffic,
    constant: SpaceTraffic,
    spawn: SpaceTraffic,
}

impl TrafficStats {
    /// Creates zeroed statistics.
    pub fn new() -> Self {
        Self::default()
    }

    /// Counters for `space`.
    pub fn space(&self, space: Space) -> &SpaceTraffic {
        match space {
            Space::Global => &self.global,
            Space::Shared => &self.shared,
            Space::Local => &self.local,
            Space::Const => &self.constant,
            Space::Spawn => &self.spawn,
        }
    }

    /// Mutable counters for `space`.
    pub fn space_mut(&mut self, space: Space) -> &mut SpaceTraffic {
        match space {
            Space::Global => &mut self.global,
            Space::Shared => &mut self.shared,
            Space::Local => &mut self.local,
            Space::Const => &mut self.constant,
            Space::Spawn => &mut self.spawn,
        }
    }

    /// Records one warp access.
    pub fn record(&mut self, space: Space, is_store: bool, bytes: u64, transactions: u64) {
        let t = self.space_mut(space);
        t.accesses += 1;
        t.transactions += transactions;
        if is_store {
            t.bytes_written += bytes;
        } else {
            t.bytes_read += bytes;
        }
    }

    /// Records bank-conflict serialization passes.
    pub fn record_conflicts(&mut self, space: Space, extra_passes: u64) {
        self.space_mut(space).bank_conflict_passes += extra_passes;
    }

    /// Total bytes read across all spaces.
    pub fn bytes_read(&self) -> u64 {
        Space::ALL.iter().map(|s| self.space(*s).bytes_read).sum()
    }

    /// Total bytes written across all spaces.
    pub fn bytes_written(&self) -> u64 {
        Space::ALL
            .iter()
            .map(|s| self.space(*s).bytes_written)
            .sum()
    }

    /// Serializes every space's counters for a simulator checkpoint, in
    /// [`Space::ALL`] order.
    pub fn encode_state(&self, enc: &mut Encoder) {
        for s in Space::ALL {
            let t = self.space(s);
            enc.put_u64(t.bytes_read);
            enc.put_u64(t.bytes_written);
            enc.put_u64(t.transactions);
            enc.put_u64(t.accesses);
            enc.put_u64(t.bank_conflict_passes);
        }
    }

    /// Restores counters previously written by
    /// [`TrafficStats::encode_state`].
    ///
    /// # Errors
    ///
    /// Returns a [`CodecError`] on truncated input.
    pub fn restore_state(&mut self, dec: &mut Decoder<'_>) -> Result<(), CodecError> {
        for s in Space::ALL {
            let t = self.space_mut(s);
            t.bytes_read = dec.take_u64()?;
            t.bytes_written = dec.take_u64()?;
            t.transactions = dec.take_u64()?;
            t.accesses = dec.take_u64()?;
            t.bank_conflict_passes = dec.take_u64()?;
        }
        Ok(())
    }

    /// Merges another statistics object into this one.
    pub fn merge(&mut self, other: &TrafficStats) {
        for s in Space::ALL {
            let dst = self.space_mut(s);
            let src = other.space(s);
            dst.bytes_read += src.bytes_read;
            dst.bytes_written += src.bytes_written;
            dst.transactions += src.transactions;
            dst.accesses += src.accesses;
            dst.bank_conflict_passes += src.bank_conflict_passes;
        }
    }
}

impl fmt::Display for TrafficStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{:<8} {:>14} {:>14} {:>12} {:>10}",
            "space", "read B", "written B", "txns", "conflicts"
        )?;
        for s in Space::ALL {
            let t = self.space(s);
            writeln!(
                f,
                "{:<8} {:>14} {:>14} {:>12} {:>10}",
                s.to_string(),
                t.bytes_read,
                t.bytes_written,
                t.transactions,
                t.bank_conflict_passes
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_accumulates() {
        let mut t = TrafficStats::new();
        t.record(Space::Global, false, 128, 2);
        t.record(Space::Global, true, 64, 1);
        t.record(Space::Spawn, false, 48, 0);
        assert_eq!(t.space(Space::Global).bytes_read, 128);
        assert_eq!(t.space(Space::Global).bytes_written, 64);
        assert_eq!(t.space(Space::Global).transactions, 3);
        assert_eq!(t.space(Space::Global).accesses, 2);
        assert_eq!(t.bytes_read(), 176);
        assert_eq!(t.bytes_written(), 64);
    }

    #[test]
    fn merge_sums_all_spaces() {
        let mut a = TrafficStats::new();
        a.record(Space::Shared, false, 4, 0);
        let mut b = TrafficStats::new();
        b.record(Space::Shared, false, 8, 0);
        b.record_conflicts(Space::Spawn, 3);
        a.merge(&b);
        assert_eq!(a.space(Space::Shared).bytes_read, 12);
        assert_eq!(a.space(Space::Spawn).bank_conflict_passes, 3);
    }

    #[test]
    fn display_lists_every_space() {
        let s = TrafficStats::new().to_string();
        for name in ["global", "shared", "local", "const", "spawn"] {
            assert!(s.contains(name), "missing {name} in {s}");
        }
    }
}
