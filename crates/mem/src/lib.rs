//! # simt-mem — GPU memory-subsystem model
//!
//! Functional backing stores plus a first-order timing model for the memory
//! hierarchy of the simulated machine (paper Table I):
//!
//! * **off-chip device memory** (`global`, `local`, `const` spaces) served by
//!   8 memory modules at 8 bytes/cycle each, accessed through warp-level
//!   coalescing into 64-byte segments, with per-module queueing delay;
//! * **on-chip scratchpads** (`shared` and the paper's new `spawn` space),
//!   banked, with conflict serialization;
//! * an **ideal memory** mode (zero latency) used for the paper's Fig. 10
//!   theoretical-branching study;
//! * byte-accurate **traffic accounting** per address space (paper Table IV).
//!
//! Functional state and timing are deliberately separated, and the model is
//! split along the chip's own boundary for the simulator's two-phase cycle:
//! each SM owns an [`SmMemFrontend`] (coalescer, read-only cache, on-chip
//! port, traffic shard) it can drive in parallel with other SMs, while the
//! single shared [`MemoryFabric`] (DRAM modules + off-chip backing) drains
//! the resulting [`FabricRequest`]s serially in SM-id order.
//!
//! ## Example
//!
//! ```
//! use simt_mem::{MemConfig, MemoryFabric};
//! use simt_isa::Space;
//!
//! let mut mem = MemoryFabric::new(MemConfig::fx5800());
//! let buf = mem.alloc_global(64, "scratch");
//! mem.write_u32(Space::Global, buf, 42);
//! assert_eq!(mem.read_u32(Space::Global, buf), 42);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod backing;
mod banks;
mod cache;
mod coalesce;
mod config;
mod fabric;
mod frontend;
mod mshr;
mod traffic;

pub use backing::{LocalStore, WordStore};
pub use banks::{conflict_degree, conflict_degree_span, OnChipMemory};
pub use cache::ReadOnlyCache;
pub use coalesce::{coalesce_segments, CoalesceResult};
pub use config::MemConfig;
#[allow(deprecated)]
pub use fabric::MemorySystem;
pub use fabric::{BatchRequest, FabricRequest, FunctionalOp, MemFault, MemoryFabric, WarpAccess};
pub use frontend::{FabricView, L1Probe, PendingAccess, SmMemFrontend};
pub use mshr::{MshrTable, FILL_UNRESOLVED};
pub use traffic::{SpaceTraffic, TrafficStats};
