//! The shared memory fabric: functional backing for the off-chip spaces
//! plus the address-interleaved module timing model.
//!
//! In the two-phase simulator pipeline the fabric is the *phase-B* side of
//! the split: every SM's [`crate::SmMemFrontend`] coalesces and validates
//! accesses privately during phase A, then the fabric drains the resulting
//! [`FabricRequest`]s and [`FunctionalOp`]s in deterministic SM-id order.

use crate::backing::{LocalStore, WordStore};
use crate::banks::conflict_degree_span;
use crate::cache::ReadOnlyCache;
use crate::coalesce::coalesce_segments;
use crate::config::MemConfig;
use crate::frontend::FabricView;
use crate::traffic::TrafficStats;
use simt_isa::codec::{CodecError, Decoder, Encoder};
use simt_isa::Space;
use std::fmt;

/// A typed functional-memory fault.
///
/// The simulator's SMs use the `try_*` accessors and turn these into warp
/// traps; the panicking accessors remain for host-side and test code where
/// an illegal access is a bug in the caller, not in the simulated program.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemFault {
    /// Word access whose byte address is not 4-byte aligned.
    Misaligned {
        /// Address space accessed.
        space: Space,
        /// The offending byte address.
        addr: u32,
    },
    /// Store past the end of the allocated global heap.
    GlobalStoreOob {
        /// The offending byte address.
        addr: u32,
        /// Bytes of global memory allocated at the time of the access.
        allocated: u32,
    },
    /// Device-side store to read-only constant memory.
    ConstStore {
        /// The offending byte address.
        addr: u32,
    },
    /// Local access past the per-thread stride.
    LocalOob {
        /// The offending per-thread byte offset.
        addr: u32,
        /// The configured per-thread stride in bytes.
        stride: u32,
    },
    /// Access to a space this component does not serve (e.g. a spawn-space
    /// access on a machine without dynamic μ-kernel hardware).
    Unmapped {
        /// The address space that has no backing here.
        space: Space,
    },
}

impl fmt::Display for MemFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MemFault::Misaligned { space, addr } => {
                write!(f, "misaligned {space} access at address {addr:#x}")
            }
            MemFault::GlobalStoreOob { addr, allocated } => write!(
                f,
                "global store at {addr:#x} past the allocated heap ({allocated:#x} bytes)"
            ),
            MemFault::ConstStore { addr } => {
                write!(
                    f,
                    "constant memory is read-only from device code (store at {addr:#x})"
                )
            }
            MemFault::LocalOob { addr, stride } => write!(
                f,
                "local access at offset {addr:#x} exceeds the per-thread stride of {stride} bytes"
            ),
            MemFault::Unmapped { space } => {
                write!(f, "no functional backing for {space} memory here")
            }
        }
    }
}

impl std::error::Error for MemFault {}

/// One warp-level memory access presented to the timing model.
///
/// `addresses` contains the byte address of every *active* lane (inactive
/// lanes make no request). For the `local` space, addresses must already be
/// physical (translated per thread via [`MemoryFabric::local_physical`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WarpAccess {
    /// Address space accessed.
    pub space: Space,
    /// `true` for stores.
    pub is_store: bool,
    /// Bytes moved per lane (4 for scalar, 16 for `v4`).
    pub bytes_per_lane: u32,
    /// Byte addresses of the active lanes.
    pub addresses: Vec<u32>,
}

/// A coalesced off-chip request emitted by an SM during phase A, serviced
/// by the fabric's memory modules during phase B.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FabricRequest {
    /// Address space accessed (global or local).
    pub space: Space,
    /// `true` for stores (fire-and-forget: the warp does not wait).
    pub is_store: bool,
    /// Base addresses of the coalesced segments, sorted ascending.
    pub segments: Vec<u32>,
}

/// One request of a hierarchy phase-B batch: a [`FabricRequest`] tagged
/// with its issuing SM (for round-robin arbitration) and the index of the
/// pending access it belongs to within that SM (so the GPU can scatter
/// per-request ready times back onto warp wake-ups).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BatchRequest {
    /// Issuing SM id.
    pub sm: usize,
    /// Index of the owning access in the SM's staged queue this cycle.
    pub access: usize,
    /// The coalesced request.
    pub request: FabricRequest,
}

/// One deferred functional word transfer, applied by the fabric in phase B.
///
/// Loads carry their destination (`lane`, `reg`) so the owning SM can write
/// the loaded value back into the parked warp; the warp cannot re-issue
/// before the next cycle, so the late register write is unobservable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FunctionalOp {
    /// Word load from an off-chip space into a lane register.
    Load {
        /// Address space (global, const, or local).
        space: Space,
        /// Issuing thread id (local-space bank selection).
        tid: u32,
        /// Byte address (per-thread offset for local).
        addr: u32,
        /// Destination lane within the warp.
        lane: usize,
        /// Destination register.
        reg: simt_isa::Reg,
    },
    /// Word store to an off-chip space.
    Store {
        /// Address space (global or local).
        space: Space,
        /// Issuing thread id (local-space bank selection).
        tid: u32,
        /// Byte address (per-thread offset for local).
        addr: u32,
        /// The value stored.
        value: u32,
    },
}

/// The L2 tag-array space tag of an off-chip request: global (and the
/// global-addressed texture fills) share tag 0, local-physical addresses
/// get their own tag so they cannot alias global lines at the same
/// numeric address.
fn l2_space_tag(space: Space) -> u8 {
    match space {
        Space::Local => 1,
        _ => 0,
    }
}

/// Times one on-chip access against a caller-owned port; shared by the
/// per-SM frontend and the fabric's compatibility path so both report the
/// exact same latencies and conflict counts.
pub(crate) fn time_onchip(
    config: &MemConfig,
    traffic: &mut TrafficStats,
    now: u64,
    req: &WarpAccess,
    port_free: &mut u64,
) -> (u64, u32) {
    assert!(req.space.is_on_chip(), "access_onchip expects shared/spawn");
    if req.addresses.is_empty() {
        return (now + 1, 1);
    }
    let requested = req.addresses.len() as u64 * u64::from(req.bytes_per_lane);
    let model_conflicts = req.space != Space::Spawn || config.spawn_bank_conflicts;
    let degree = if model_conflicts {
        let words_per_lane = (req.bytes_per_lane / 4).max(1);
        conflict_degree_span(&req.addresses, words_per_lane, config.shared_banks)
    } else {
        1
    };
    traffic.record(req.space, req.is_store, requested, 0);
    if degree > 1 {
        traffic.record_conflicts(req.space, u64::from(degree - 1));
    }
    if config.ideal {
        return (now + 1, 1);
    }
    let start = now.max(*port_free);
    *port_free = start + u64::from(degree);
    (
        start + u64::from(degree) + u64::from(config.shared_latency),
        degree,
    )
}

/// The chip-wide memory fabric: functional backing for the off-chip spaces
/// plus the shared timing state (the 8 address-interleaved DRAM modules of
/// paper Table I).
///
/// On-chip backing data (shared/spawn contents) is owned per-SM by the
/// simulator, and per-SM timing (caches, coalescing, on-chip ports) lives
/// in [`crate::SmMemFrontend`]. The fabric is the only cross-SM memory
/// state, which is what makes the simulator's phase A embarrassingly
/// parallel.
#[derive(Debug, Clone)]
pub struct MemoryFabric {
    config: MemConfig,
    global: WordStore,
    constant: WordStore,
    local: LocalStore,
    /// (Fractional) cycle at which each off-chip module becomes free.
    module_free: Vec<f64>,
    /// Cumulative (fractional) DRAM cycles each module spent servicing
    /// segments — the telemetry view of module pressure.
    module_busy: Vec<f64>,
    traffic: TrafficStats,
    /// Global-memory regions marked cacheable by per-SM read-only caches
    /// ("texture bindings").
    read_only_regions: Vec<(u32, u32)>,
    /// Shared L2, one slice per memory partition (in front of the DRAM
    /// module with the same index). Empty on the legacy flat fabric.
    /// Timing-only, like the L1: loads probe, stores write through.
    l2: Vec<ReadOnlyCache>,
    /// Cycle at which each SM↔partition interconnect bank becomes free.
    icnt_free: Vec<u64>,
    /// Cumulative cycles each bank spent moving flits (telemetry).
    icnt_busy: Vec<u64>,
    /// Per-bank round-robin pointer: the SM id granted first next cycle.
    icnt_rr: Vec<u32>,
    /// Grants that queued behind another SM's flit in the same cycle.
    icnt_conflicts: u64,
}

/// Compatibility alias: the pre-split name of [`MemoryFabric`].
///
/// The split gave each side an explicit name: host-side/functional/phase-B
/// code talks to the [`MemoryFabric`], per-SM phase-A timing lives in
/// [`crate::SmMemFrontend`]. Use whichever side you mean; this alias is
/// kept for one release for downstream code.
#[deprecated(
    note = "use `MemoryFabric` (shared fabric / host side) or `SmMemFrontend` (per-SM side)"
)]
pub type MemorySystem = MemoryFabric;

impl MemoryFabric {
    /// Creates a memory fabric with empty contents.
    pub fn new(config: MemConfig) -> Self {
        let modules = config.num_modules;
        let partitions = config.partitions();
        let l2 = if config.l2_enabled() {
            // Capacity splits evenly across the partitions; each slice is
            // clamped up to one full set so degenerate configurations
            // still build.
            let min_slice = config.l2_line_bytes * config.l2_ways as u32;
            let raw = config.l2_bytes / partitions as u32;
            let slice = (raw / min_slice).max(1) * min_slice;
            (0..partitions)
                .map(|_| ReadOnlyCache::new(slice, config.l2_line_bytes, config.l2_ways))
                .collect()
        } else {
            Vec::new()
        };
        MemoryFabric {
            config,
            global: WordStore::new(),
            constant: WordStore::new(),
            local: LocalStore::new(0),
            module_free: vec![0.0; modules],
            module_busy: vec![0.0; modules],
            traffic: TrafficStats::new(),
            read_only_regions: Vec::new(),
            l2,
            icnt_free: vec![0; partitions],
            icnt_busy: vec![0; partitions],
            icnt_rr: vec![0; partitions],
            icnt_conflicts: 0,
        }
    }

    /// Marks `[base, base+bytes)` of global memory as read-only/cacheable
    /// (the host-side equivalent of binding a texture).
    pub fn mark_read_only(&mut self, base: u32, bytes: u32) {
        self.read_only_regions.push((base, bytes));
    }

    /// Whether a global address falls inside a read-only (texture) region.
    pub fn is_read_only(&self, addr: u32) -> bool {
        self.read_only_regions
            .iter()
            .any(|&(b, n)| addr >= b && addr < b.saturating_add(n))
    }

    /// The active configuration.
    pub fn config(&self) -> &MemConfig {
        &self.config
    }

    /// An owned snapshot of the metadata phase-A validation needs. All of
    /// it is static while a launch runs (allocation, local stride, and
    /// texture bindings only change from host code between runs), so the
    /// view stays valid for a whole [`crate::MemoryFabric`] run and can be
    /// shared freely across SM worker threads.
    pub fn view(&self) -> FabricView {
        FabricView::new(
            self.config.clone(),
            self.global.allocated_bytes(),
            self.local.stride_bytes(),
            self.read_only_regions.clone(),
        )
    }

    /// Allocates a labeled region of global memory; returns the base address.
    pub fn alloc_global(&mut self, bytes: u32, label: &str) -> u32 {
        self.global.alloc(bytes, label)
    }

    /// Allocates a labeled region of constant memory; returns the base address.
    pub fn alloc_const(&mut self, bytes: u32, label: &str) -> u32 {
        self.constant.alloc(bytes, label)
    }

    /// Gives every thread `stride_bytes` of private local memory.
    pub fn configure_local(&mut self, stride_bytes: u32) {
        self.local = LocalStore::new(stride_bytes);
    }

    /// Translates a per-thread local byte offset to a physical address used
    /// for coalescing/timing.
    pub fn local_physical(&self, tid: u32, addr: u32) -> u32 {
        tid.wrapping_mul(self.local.stride_bytes()) + addr
    }

    /// Checked functional word read from an off-chip space.
    ///
    /// Reads past the end of the allocated heap stay lenient and return 0
    /// (uninitialized DRAM); misalignment and unserved spaces are faults.
    pub fn try_read_u32(&self, space: Space, addr: u32) -> Result<u32, MemFault> {
        if !addr.is_multiple_of(4) {
            return Err(MemFault::Misaligned { space, addr });
        }
        match space {
            Space::Global => Ok(self.global.read(addr)),
            Space::Const => Ok(self.constant.read(addr)),
            _ => Err(MemFault::Unmapped { space }),
        }
    }

    /// Checked functional word write to an off-chip space.
    ///
    /// Global stores must land inside the allocated heap; constant memory
    /// is read-only from device code.
    pub fn try_write_u32(&mut self, space: Space, addr: u32, value: u32) -> Result<(), MemFault> {
        if !addr.is_multiple_of(4) {
            return Err(MemFault::Misaligned { space, addr });
        }
        match space {
            Space::Global => {
                // The extent check only applies once the host has carved out
                // a heap via `alloc_global`; with no allocations the store
                // lands in unbounded scratch (bare test programs rely on it).
                let allocated = self.global.allocated_bytes();
                if allocated > 0 && addr >= allocated {
                    return Err(MemFault::GlobalStoreOob { addr, allocated });
                }
                self.global.write(addr, value);
                Ok(())
            }
            Space::Const => Err(MemFault::ConstStore { addr }),
            _ => Err(MemFault::Unmapped { space }),
        }
    }

    /// Functional word read from an off-chip space.
    ///
    /// # Panics
    ///
    /// Panics for on-chip spaces (their contents are owned per-SM), for
    /// `local` (use [`MemoryFabric::read_local`]), and on misalignment.
    pub fn read_u32(&self, space: Space, addr: u32) -> u32 {
        match self.try_read_u32(space, addr) {
            Ok(v) => v,
            Err(e) => panic!("{e}"),
        }
    }

    /// Functional word write to an off-chip space.
    ///
    /// # Panics
    ///
    /// Panics for on-chip spaces, `local`, and `const` (read-only from
    /// device code; use [`MemoryFabric::alloc_const`] +
    /// [`MemoryFabric::host_write_const`] from the host side).
    pub fn write_u32(&mut self, space: Space, addr: u32, value: u32) {
        if let Err(e) = self.try_write_u32(space, addr, value) {
            panic!("{e}");
        }
    }

    /// Host-side write to constant memory (kernel launch setup).
    pub fn host_write_const(&mut self, addr: u32, value: u32) {
        self.constant.write(addr, value);
    }

    /// Host-side bulk write to global memory.
    pub fn host_write_global(&mut self, addr: u32, values: &[u32]) {
        self.global.write_words(addr, values);
    }

    /// Host-side bulk read from global memory.
    pub fn host_read_global(&self, addr: u32, words: usize) -> Vec<u32> {
        self.global.read_words(addr, words)
    }

    /// Checks a local access against alignment and the per-thread stride.
    fn check_local(&self, addr: u32) -> Result<(), MemFault> {
        if !addr.is_multiple_of(4) {
            return Err(MemFault::Misaligned {
                space: Space::Local,
                addr,
            });
        }
        let stride = self.local.stride_bytes();
        if addr >= stride.max(4) {
            return Err(MemFault::LocalOob { addr, stride });
        }
        Ok(())
    }

    /// Checked functional read of thread `tid`'s local memory.
    pub fn try_read_local(&self, tid: u32, addr: u32) -> Result<u32, MemFault> {
        self.check_local(addr)?;
        Ok(self.local.read(tid, addr))
    }

    /// Checked functional write of thread `tid`'s local memory.
    pub fn try_write_local(&mut self, tid: u32, addr: u32, value: u32) -> Result<(), MemFault> {
        self.check_local(addr)?;
        self.local.write(tid, addr, value);
        Ok(())
    }

    /// Functional read of thread `tid`'s local memory.
    ///
    /// # Panics
    ///
    /// Panics on out-of-bounds or unaligned access.
    pub fn read_local(&self, tid: u32, addr: u32) -> u32 {
        self.local.read(tid, addr)
    }

    /// Functional write of thread `tid`'s local memory.
    ///
    /// # Panics
    ///
    /// Panics on out-of-bounds or unaligned access.
    pub fn write_local(&mut self, tid: u32, addr: u32, value: u32) {
        self.local.write(tid, addr, value)
    }

    /// Applies one deferred functional op in phase B. Loads return the
    /// loaded value for the SM to write back; stores return `None`.
    ///
    /// Ops were validated against a [`FabricView`] at issue, so illegal
    /// accesses cannot reach this point.
    ///
    /// # Panics
    ///
    /// Panics on an op the frontend should have rejected (on-chip space,
    /// misalignment, store to const).
    pub fn apply(&mut self, op: &FunctionalOp) -> Option<u32> {
        match *op {
            FunctionalOp::Load {
                space, tid, addr, ..
            } => Some(match space {
                Space::Global | Space::Const => self.read_u32(space, addr),
                Space::Local => self.read_local(tid, addr),
                _ => panic!("on-chip op deferred to the fabric"),
            }),
            FunctionalOp::Store {
                space,
                tid,
                addr,
                value,
            } => {
                match space {
                    Space::Global => self.write_u32(space, addr, value),
                    Space::Local => self.write_local(tid, addr, value),
                    _ => panic!("non-global/local store deferred to the fabric"),
                }
                None
            }
        }
    }

    /// Services one coalesced request against the address-interleaved
    /// memory modules at cycle `now`: each segment queues on its module
    /// ([`MemConfig::module_of`]) and occupies it for
    /// [`MemConfig::segment_service_cycles`]. Returns the cycle at which
    /// the last segment's data is available.
    ///
    /// Within a cycle the simulator drains requests in fixed SM-id order,
    /// so module arbitration is deterministic regardless of how many
    /// threads ran phase A.
    pub fn service(&mut self, now: u64, req: &FabricRequest) -> u64 {
        let service = self.config.segment_service_cycles();
        let mut ready = now + 1;
        for &seg in &req.segments {
            let module = self.config.module_of(seg);
            let start = (now as f64).max(self.module_free[module]);
            self.module_free[module] = start + service;
            self.module_busy[module] += service;
            let done = (start + service).ceil() as u64 + u64::from(self.config.dram_latency);
            ready = ready.max(done);
        }
        ready
    }

    /// Queues one segment on its DRAM module starting no earlier than
    /// `arrival`; returns the cycle its data is available.
    fn queue_module(&mut self, arrival: u64, module: usize) -> u64 {
        let service = self.config.segment_service_cycles();
        let start = (arrival as f64).max(self.module_free[module]);
        self.module_free[module] = start + service;
        self.module_busy[module] += service;
        (start + service).ceil() as u64 + u64::from(self.config.dram_latency)
    }

    /// Services one cycle's worth of requests through the cache/
    /// interconnect hierarchy: every segment traverses the banked
    /// SM↔partition interconnect (one bank per partition, round-robin
    /// arbitration across SMs, per-bank busy accounting), probes its
    /// partition's L2 slice, and on an L2 miss queues on the DRAM module
    /// behind it. Returns one ready cycle per batch request.
    ///
    /// `batch` must be ordered by SM id (within an SM, by issue order) —
    /// the order the GPU's phase B stages requests in — so arbitration is
    /// deterministic at any phase-A parallelism.
    ///
    /// Round-robin fairness: each bank remembers the SM after the last
    /// one it granted in the previous cycle and starts this cycle's grant
    /// sweep there, so a low-numbered SM cannot starve the others the way
    /// fixed-priority (SM-id-ordered) servicing would.
    pub fn service_batch(&mut self, now: u64, batch: &[BatchRequest]) -> Vec<u64> {
        let mut ready = vec![now + 1; batch.len()];
        if batch.is_empty() {
            return ready;
        }
        let partitions = self.config.partitions();
        let flit = u64::from(self.config.icnt_flit_cycles.max(1));
        let latency = u64::from(self.config.icnt_latency);
        let l2_hit = u64::from(self.config.l2_hit_latency);
        // Split the batch into per-bank grant queues (batch order = SM-id
        // order is preserved within each queue).
        let mut queues: Vec<Vec<(usize, u32)>> = vec![Vec::new(); partitions];
        for (i, b) in batch.iter().enumerate() {
            for &seg in &b.request.segments {
                queues[self.config.module_of(seg)].push((i, seg));
            }
        }
        for (bank, queue) in queues.into_iter().enumerate() {
            if queue.is_empty() {
                continue;
            }
            // Rotate the grant sweep to the round-robin start SM.
            let rr = self.icnt_rr[bank];
            let start = queue
                .iter()
                .position(|&(i, _)| batch[i].sm as u32 >= rr)
                .unwrap_or(0);
            let distinct_sms = {
                let mut n = 0u64;
                let mut last = usize::MAX;
                for &(i, _) in &queue {
                    if batch[i].sm != last {
                        n += 1;
                        last = batch[i].sm;
                    }
                }
                n
            };
            if distinct_sms > 1 {
                self.icnt_conflicts += distinct_sms - 1;
            }
            let mut t = now.max(self.icnt_free[bank]);
            for k in 0..queue.len() {
                let (i, seg) = queue[(start + k) % queue.len()];
                t += flit;
                self.icnt_busy[bank] += flit;
                let arrival = t + latency;
                let is_store = batch[i].request.is_store;
                // Stores write through (no L2 allocate); loads probe the
                // partition's slice and only misses reach DRAM. The probe
                // is tagged with the request's address space: local
                // requests arrive under the tid-strided physical mapping,
                // whose numeric addresses overlap the global heap, and one
                // shared tag array must not let the two spaces alias (the
                // L1 side-steps this by excluding local entirely).
                let done = if !is_store
                    && self.l2[bank].access_tagged(l2_space_tag(batch[i].request.space), seg)
                {
                    arrival + l2_hit
                } else {
                    self.queue_module(arrival, bank)
                };
                ready[i] = ready[i].max(done);
            }
            let last_sm = batch[queue[(start + queue.len() - 1) % queue.len()].0].sm;
            self.icnt_free[bank] = t;
            self.icnt_rr[bank] = last_sm as u32 + 1;
        }
        ready
    }

    /// Aggregate `(hits, misses)` over the L2 slices, if the L2 is
    /// modeled. Stores bypass the L2 and are counted in neither.
    pub fn l2_stats(&self) -> Option<(u64, u64)> {
        if self.l2.is_empty() {
            return None;
        }
        Some(
            self.l2
                .iter()
                .fold((0, 0), |(h, m), c| (h + c.hits, m + c.misses)),
        )
    }

    /// Cumulative cycles each interconnect bank spent moving flits,
    /// indexed by partition. All zeros on the legacy flat fabric.
    pub fn icnt_busy(&self) -> &[u64] {
        &self.icnt_busy
    }

    /// Interconnect grants that queued behind another SM's flit within a
    /// single arbitration cycle.
    pub fn icnt_conflicts(&self) -> u64 {
        self.icnt_conflicts
    }

    /// Cumulative (fractional) DRAM cycles each module has spent servicing
    /// segments, indexed by module id. Telemetry's view of per-module
    /// pressure; reset together with the timing state.
    pub fn module_busy(&self) -> &[f64] {
        &self.module_busy
    }

    /// Times one warp access starting at cycle `now`; returns the cycle at
    /// which the data is available (loads) or retired (stores), and records
    /// traffic.
    ///
    /// This is the pre-split single-call path, kept for host-side tools and
    /// tests; the simulator itself goes through
    /// [`crate::SmMemFrontend::request_offchip`] + [`MemoryFabric::service`]
    /// so that only phase B touches the shared module state. Both paths
    /// produce identical timing.
    pub fn access(&mut self, now: u64, req: &WarpAccess) -> u64 {
        if req.addresses.is_empty() {
            return now + 1;
        }
        let requested = req.addresses.len() as u64 * u64::from(req.bytes_per_lane);
        // Constant memory is served by the (always-present) constant cache:
        // broadcast reads at near-register latency, no DRAM bandwidth.
        if req.space == Space::Const {
            self.traffic.record(req.space, req.is_store, requested, 0);
            if self.config.ideal {
                return now + 1;
            }
            return now + u64::from(self.config.tex_hit_latency.max(1));
        }
        if req.space.is_on_chip() {
            let mut port = now; // un-tracked port: no cross-access contention
            return self.access_onchip(now, req, &mut port).0;
        }

        // Off-chip: coalesce, then queue segments on modules.
        let result = coalesce_segments(
            &req.addresses,
            req.bytes_per_lane,
            self.config.segment_bytes,
        );
        self.traffic.record(
            req.space,
            req.is_store,
            requested,
            result.transactions() as u64,
        );
        if self.config.ideal {
            return now + 1;
        }
        self.service(
            now,
            &FabricRequest {
                space: req.space,
                is_store: req.is_store,
                segments: result.segments,
            },
        )
    }

    /// Times one **on-chip** warp access (shared or spawn space) against a
    /// caller-owned port: `port_free` is the cycle at which that SM's
    /// load-store port becomes free. Bank-conflict serialization occupies
    /// the port for one pass per conflicting word set, so conflicting
    /// accesses also delay *other* warps on the same SM — the pipeline
    /// stalls the paper observes in Fig. 9.
    ///
    /// `v4` accesses are expanded to word granularity before computing the
    /// conflict degree (each lane touches four consecutive banks).
    ///
    /// # Panics
    ///
    /// Panics if the space is not on-chip.
    pub fn access_onchip(&mut self, now: u64, req: &WarpAccess, port_free: &mut u64) -> (u64, u32) {
        time_onchip(&self.config, &mut self.traffic, now, req, port_free)
    }

    /// Accumulated traffic statistics.
    ///
    /// In the split pipeline this covers only accesses made through the
    /// fabric's own compatibility paths; the simulator aggregates per-SM
    /// frontend traffic on top (see `Gpu::run`'s summary).
    pub fn traffic(&self) -> &TrafficStats {
        &self.traffic
    }

    /// Resets timing state (module queues, busy accounting) and traffic,
    /// keeping contents.
    pub fn reset_timing(&mut self) {
        self.module_free.iter_mut().for_each(|m| *m = 0.0);
        self.module_busy.iter_mut().for_each(|m| *m = 0.0);
        self.traffic = TrafficStats::new();
        self.l2.iter_mut().for_each(ReadOnlyCache::reset);
        self.icnt_free.iter_mut().for_each(|b| *b = 0);
        self.icnt_busy.iter_mut().for_each(|b| *b = 0);
        self.icnt_rr.iter_mut().for_each(|b| *b = 0);
        self.icnt_conflicts = 0;
    }

    /// Bytes of global memory allocated so far.
    pub fn global_allocated(&self) -> u32 {
        self.global.allocated_bytes()
    }

    /// Serializes the fabric's complete mutable state — backing stores,
    /// per-module timing, traffic, and texture bindings — for a simulator
    /// checkpoint. Requests never persist across cycles (each
    /// [`MemoryFabric::service`] call retires immediately, leaving only the
    /// fractional `module_free` timestamps), so this captures everything.
    pub fn encode_state(&self, enc: &mut Encoder) {
        self.global.encode_state(enc);
        self.constant.encode_state(enc);
        self.local.encode_state(enc);
        enc.put_usize(self.module_free.len());
        for &m in &self.module_free {
            enc.put_f64(m);
        }
        for &m in &self.module_busy {
            enc.put_f64(m);
        }
        self.traffic.encode_state(enc);
        enc.put_usize(self.read_only_regions.len());
        for &(base, bytes) in &self.read_only_regions {
            enc.put_u32(base);
            enc.put_u32(bytes);
        }
        enc.put_usize(self.l2.len());
        for slice in &self.l2 {
            slice.encode_state(enc);
        }
        for &b in &self.icnt_free {
            enc.put_u64(b);
        }
        for &b in &self.icnt_busy {
            enc.put_u64(b);
        }
        for &b in &self.icnt_rr {
            enc.put_u32(b);
        }
        enc.put_u64(self.icnt_conflicts);
    }

    /// Restores state previously written by
    /// [`MemoryFabric::encode_state`] into a fabric built from the same
    /// configuration.
    ///
    /// # Errors
    ///
    /// Returns a [`CodecError`] on truncated input or when the module count
    /// disagrees with this fabric's configuration.
    pub fn restore_state(&mut self, dec: &mut Decoder<'_>) -> Result<(), CodecError> {
        self.global.restore_state(dec)?;
        self.constant.restore_state(dec)?;
        self.local.restore_state(dec)?;
        let modules = dec.take_len(8)?;
        if modules != self.module_free.len() {
            return Err(CodecError::BadLength {
                len: modules as u64,
                remaining: self.module_free.len(),
            });
        }
        for m in &mut self.module_free {
            *m = dec.take_f64()?;
        }
        for m in &mut self.module_busy {
            *m = dec.take_f64()?;
        }
        self.traffic.restore_state(dec)?;
        let regions = dec.take_len(8)?;
        self.read_only_regions = (0..regions)
            .map(|_| Ok((dec.take_u32()?, dec.take_u32()?)))
            .collect::<Result<_, CodecError>>()?;
        let slices = dec.take_len(1)?;
        if slices != self.l2.len() {
            // Snapshot from a different cache configuration (e.g. flat
            // fabric restoring a cached run's state).
            return Err(CodecError::BadLength {
                len: slices as u64,
                remaining: self.l2.len(),
            });
        }
        for slice in &mut self.l2 {
            slice.restore_state(dec)?;
        }
        for b in &mut self.icnt_free {
            *b = dec.take_u64()?;
        }
        for b in &mut self.icnt_busy {
            *b = dec.take_u64()?;
        }
        for b in &mut self.icnt_rr {
            *b = dec.take_u32()?;
        }
        self.icnt_conflicts = dec.take_u64()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn coalesced_warp(base: u32) -> WarpAccess {
        WarpAccess {
            space: Space::Global,
            is_store: false,
            bytes_per_lane: 4,
            addresses: (0..32).map(|i| base + i * 4).collect(),
        }
    }

    #[test]
    fn functional_global_roundtrip() {
        let mut m = MemoryFabric::new(MemConfig::fx5800());
        let a = m.alloc_global(16, "t");
        m.write_u32(Space::Global, a + 4, 9);
        assert_eq!(m.read_u32(Space::Global, a + 4), 9);
    }

    #[test]
    #[should_panic(expected = "read-only")]
    fn device_const_write_panics() {
        let mut m = MemoryFabric::new(MemConfig::fx5800());
        m.write_u32(Space::Const, 0, 1);
    }

    #[test]
    fn coalesced_access_is_fast_scattered_is_slow() {
        let mut m = MemoryFabric::new(MemConfig::fx5800());
        let t_coalesced = m.access(0, &coalesced_warp(0));
        m.reset_timing();
        let scattered = WarpAccess {
            space: Space::Global,
            is_store: false,
            bytes_per_lane: 4,
            addresses: (0..32).map(|i| i * 4096).collect(),
        };
        let t_scattered = m.access(0, &scattered);
        assert!(
            t_scattered > t_coalesced,
            "scattered {t_scattered} <= coalesced {t_coalesced}"
        );
    }

    #[test]
    fn module_queueing_backs_up() {
        let mut m = MemoryFabric::new(MemConfig::fx5800());
        // Same segment repeatedly: same module, so queueing accrues.
        let a = WarpAccess {
            space: Space::Global,
            is_store: false,
            bytes_per_lane: 4,
            addresses: vec![0; 1].into_iter().collect(),
        };
        let t1 = m.access(0, &a);
        let t2 = m.access(0, &a);
        assert!(t2 > t1, "second access must queue behind the first");
    }

    #[test]
    fn ideal_memory_is_single_cycle() {
        let mut m = MemoryFabric::new(MemConfig::fx5800().with_ideal(true));
        assert_eq!(m.access(10, &coalesced_warp(0)), 11);
        let spawn = WarpAccess {
            space: Space::Spawn,
            is_store: true,
            bytes_per_lane: 16,
            addresses: (0..32).map(|i| i * 64).collect(),
        };
        assert_eq!(m.access(10, &spawn), 11);
    }

    #[test]
    fn spawn_conflicts_toggle() {
        // Stride of 16 words on 16 banks: degree 8 for 8 lanes.
        let addrs: Vec<u32> = (0..8).map(|i| i * 64).collect();
        let req = WarpAccess {
            space: Space::Spawn,
            is_store: false,
            bytes_per_lane: 4,
            addresses: addrs,
        };
        let mut without = MemoryFabric::new(MemConfig::fx5800().with_spawn_bank_conflicts(false));
        let mut with = MemoryFabric::new(MemConfig::fx5800().with_spawn_bank_conflicts(true));
        let t_without = without.access(0, &req);
        let t_with = with.access(0, &req);
        assert!(t_with > t_without);
        assert_eq!(with.traffic().space(Space::Spawn).bank_conflict_passes, 7);
        assert_eq!(
            without.traffic().space(Space::Spawn).bank_conflict_passes,
            0
        );
    }

    #[test]
    fn shared_conflicts_always_modeled() {
        let addrs: Vec<u32> = (0..8).map(|i| i * 64).collect();
        let req = WarpAccess {
            space: Space::Shared,
            is_store: false,
            bytes_per_lane: 4,
            addresses: addrs,
        };
        let mut m = MemoryFabric::new(MemConfig::fx5800().with_spawn_bank_conflicts(false));
        let base = u64::from(m.config().shared_latency);
        // Degree 8: the access occupies the port for 8 passes.
        assert_eq!(m.access(0, &req), base + 8);
    }

    #[test]
    fn traffic_recorded_per_space() {
        let mut m = MemoryFabric::new(MemConfig::fx5800());
        m.access(0, &coalesced_warp(0));
        let g = m.traffic().space(Space::Global);
        assert_eq!(g.bytes_read, 128);
        assert_eq!(g.transactions, 4); // 128 B over 32 B segments
        assert_eq!(g.accesses, 1);
    }

    #[test]
    fn local_translation_and_storage() {
        let mut m = MemoryFabric::new(MemConfig::fx5800());
        m.configure_local(388);
        m.write_local(3, 8, 77);
        assert_eq!(m.read_local(3, 8), 77);
        assert_eq!(m.read_local(2, 8), 0);
        assert_eq!(
            m.local_physical(1, 4),
            388 + 4 /* thread 1's bank, word offset 4 (stride rounds to 388) */
        );
    }

    #[test]
    fn empty_access_is_noop() {
        let mut m = MemoryFabric::new(MemConfig::fx5800());
        let req = WarpAccess {
            space: Space::Global,
            is_store: false,
            bytes_per_lane: 4,
            addresses: Vec::new(),
        };
        assert_eq!(m.access(5, &req), 6);
        assert_eq!(m.traffic().space(Space::Global).accesses, 0);
    }

    #[test]
    fn reset_timing_clears_queues_and_traffic() {
        let mut m = MemoryFabric::new(MemConfig::fx5800());
        let t1 = m.access(0, &coalesced_warp(0));
        m.reset_timing();
        let t2 = m.access(0, &coalesced_warp(0));
        assert_eq!(t1, t2);
        assert_eq!(m.traffic().space(Space::Global).accesses, 1);
    }

    #[test]
    fn service_matches_access_timing() {
        // The split request path (frontend coalesce + fabric service) must
        // time exactly like the single-call compatibility path.
        let req = WarpAccess {
            space: Space::Global,
            is_store: false,
            bytes_per_lane: 4,
            addresses: (0..32).map(|i| i * 256).collect(),
        };
        let mut direct = MemoryFabric::new(MemConfig::fx5800());
        let t_direct = direct.access(7, &req);

        let mut split = MemoryFabric::new(MemConfig::fx5800());
        let result = coalesce_segments(&req.addresses, req.bytes_per_lane, 32);
        let t_split = split.service(
            7,
            &FabricRequest {
                space: req.space,
                is_store: req.is_store,
                segments: result.segments,
            },
        );
        assert_eq!(t_direct, t_split);
    }

    #[test]
    fn apply_performs_deferred_ops() {
        let mut m = MemoryFabric::new(MemConfig::fx5800());
        m.alloc_global(64, "t");
        m.configure_local(16);
        m.apply(&FunctionalOp::Store {
            space: Space::Global,
            tid: 0,
            addr: 8,
            value: 123,
        });
        let v = m.apply(&FunctionalOp::Load {
            space: Space::Global,
            tid: 0,
            addr: 8,
            lane: 0,
            reg: simt_isa::Reg(1),
        });
        assert_eq!(v, Some(123));
        m.apply(&FunctionalOp::Store {
            space: Space::Local,
            tid: 3,
            addr: 4,
            value: 9,
        });
        assert_eq!(m.read_local(3, 4), 9);
    }

    fn batch(sm: usize, access: usize, is_store: bool, segments: Vec<u32>) -> BatchRequest {
        BatchRequest {
            sm,
            access,
            request: FabricRequest {
                space: Space::Global,
                is_store,
                segments,
            },
        }
    }

    #[test]
    fn l2_hit_is_faster_than_miss_and_counted() {
        let mut m = MemoryFabric::new(MemConfig::fx5800_cached());
        let cold = m.service_batch(0, &[batch(0, 0, false, vec![0])]);
        // Far enough ahead that the bank and module are idle again.
        let warm = m.service_batch(10_000, &[batch(0, 0, false, vec![0])]);
        assert!(
            warm[0] - 10_000 < cold[0],
            "L2 hit ({}) not faster than DRAM miss ({})",
            warm[0] - 10_000,
            cold[0]
        );
        assert_eq!(m.l2_stats(), Some((1, 1)));
        let flit = u64::from(m.config().icnt_flit_cycles);
        let hit = flit + u64::from(m.config().icnt_latency) + u64::from(m.config().l2_hit_latency);
        assert_eq!(warm[0], 10_000 + hit);
    }

    #[test]
    fn l2_keeps_local_and_global_spaces_apart() {
        // Local-physical addresses (tid*stride + offset) overlap the
        // global heap numerically; the same segment address in the two
        // spaces must occupy distinct L2 lines — a warm global line is
        // not a hit for a local load, and vice versa.
        let mut m = MemoryFabric::new(MemConfig::fx5800_cached());
        let local = |sm, access, segments| BatchRequest {
            sm,
            access,
            request: FabricRequest {
                space: Space::Local,
                is_store: false,
                segments,
            },
        };
        m.service_batch(0, &[batch(0, 0, false, vec![0])]);
        assert_eq!(m.l2_stats(), Some((0, 1)));
        // Same numeric segment, local space: must miss, not falsely hit.
        m.service_batch(10_000, &[local(0, 0, vec![0])]);
        assert_eq!(m.l2_stats(), Some((0, 2)));
        // Each space then hits its own line.
        m.service_batch(20_000, &[batch(0, 0, false, vec![0])]);
        m.service_batch(30_000, &[local(0, 0, vec![0])]);
        assert_eq!(m.l2_stats(), Some((2, 2)));
    }

    #[test]
    fn stores_bypass_l2() {
        let mut m = MemoryFabric::new(MemConfig::fx5800_cached());
        m.service_batch(0, &[batch(0, 0, true, vec![0])]);
        assert_eq!(m.l2_stats(), Some((0, 0)));
        // The store did not allocate: a later load to the same line misses.
        m.service_batch(10_000, &[batch(0, 0, false, vec![0])]);
        assert_eq!(m.l2_stats(), Some((0, 1)));
    }

    #[test]
    fn round_robin_rotates_grant_order_across_sms() {
        // Segments 0 and 256 both interleave onto module 0 (256/32 % 8 == 0)
        // but live on different L2 lines, so both miss and queue on DRAM —
        // grant order is visible in the ready times.
        let mut m = MemoryFabric::new(MemConfig::fx5800_cached());
        let r = m.service_batch(
            0,
            &[batch(0, 0, false, vec![0]), batch(1, 0, false, vec![256])],
        );
        assert!(r[0] < r[1], "fresh pointer grants SM 0 first");
        assert_eq!(m.icnt_conflicts(), 1);
        // SM 1 was granted last, so the pointer now favors... SM 2+; with
        // none present it wraps to SM 0 again. Park the pointer after SM 0
        // instead, then re-contend: SM 1 must go first this time.
        let mut m = MemoryFabric::new(MemConfig::fx5800_cached());
        m.service_batch(0, &[batch(0, 0, false, vec![0])]);
        let r = m.service_batch(
            10_000,
            &[batch(0, 0, false, vec![512]), batch(1, 0, false, vec![768])],
        );
        assert!(r[1] < r[0], "pointer past SM 0 grants SM 1 first");
        assert!(m.icnt_busy().iter().sum::<u64>() > 0);
    }

    #[test]
    fn flat_fabric_has_no_l2_and_batch_still_services() {
        let m = MemoryFabric::new(MemConfig::fx5800());
        assert_eq!(m.l2_stats(), None);
        assert!(m.icnt_busy().iter().all(|&b| b == 0));
    }

    #[test]
    fn hierarchy_state_round_trips_and_flat_rejects_it() {
        let mut m = MemoryFabric::new(MemConfig::fx5800_cached());
        m.alloc_global(1024, "t");
        m.service_batch(
            0,
            &[batch(0, 0, false, vec![0]), batch(1, 0, false, vec![32])],
        );
        let mut enc = Encoder::new();
        m.encode_state(&mut enc);
        let bytes = enc.into_bytes();

        let mut restored = MemoryFabric::new(MemConfig::fx5800_cached());
        restored
            .restore_state(&mut Decoder::new(&bytes))
            .expect("round trip");
        assert_eq!(restored.l2_stats(), m.l2_stats());
        assert_eq!(restored.icnt_busy(), m.icnt_busy());
        assert_eq!(restored.icnt_conflicts(), m.icnt_conflicts());
        // Restored arbitration state replays identically.
        let a = m.service_batch(10_000, &[batch(0, 0, false, vec![0])]);
        let b = restored.service_batch(10_000, &[batch(0, 0, false, vec![0])]);
        assert_eq!(a, b);

        let mut flat = MemoryFabric::new(MemConfig::fx5800());
        assert!(
            flat.restore_state(&mut Decoder::new(&bytes)).is_err(),
            "flat fabric must reject a cached snapshot"
        );
    }

    #[test]
    fn view_snapshots_validation_metadata() {
        let mut m = MemoryFabric::new(MemConfig::fx5800());
        m.alloc_global(64, "t");
        m.configure_local(32);
        m.mark_read_only(0, 16);
        let v = m.view();
        assert!(v.is_read_only(4));
        assert!(!v.is_read_only(20));
        assert_eq!(v.local_physical(2, 4), m.local_physical(2, 4));
        assert!(v.check_store(Space::Global, 60).is_ok());
        assert_eq!(
            v.check_store(Space::Global, 64),
            Err(MemFault::GlobalStoreOob {
                addr: 64,
                allocated: 64
            })
        );
    }
}
