//! Functional backing stores: word-addressed memories with bump allocation.

use serde::{Deserialize, Serialize};
use simt_isa::codec::{CodecError, Decoder, Encoder};

/// A flat, word-addressed memory image with a bump allocator.
///
/// Addresses are byte addresses but must be 4-byte aligned (the ISA is
/// word-oriented). Reads of unwritten memory return `0`. Used for the
/// global and constant spaces.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct WordStore {
    words: Vec<u32>,
    next_free: u32,
    allocations: Vec<(String, u32, u32)>,
}

impl WordStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Allocates `bytes` (rounded up to a whole word, 16-byte aligned so
    /// `v4` vectors never straddle segments) and returns the base address.
    ///
    /// The `label` is kept for debugging/layout dumps.
    pub fn alloc(&mut self, bytes: u32, label: &str) -> u32 {
        let base = (self.next_free + 15) & !15;
        let size = (bytes + 3) & !3;
        self.next_free = base + size;
        self.allocations.push((label.to_string(), base, size));
        let need_words = (self.next_free / 4) as usize;
        if self.words.len() < need_words {
            self.words.resize(need_words, 0);
        }
        base
    }

    /// Total bytes allocated so far (including alignment padding).
    pub fn allocated_bytes(&self) -> u32 {
        self.next_free
    }

    /// Named allocations `(label, base, size)`, in allocation order.
    pub fn allocations(&self) -> &[(String, u32, u32)] {
        &self.allocations
    }

    /// Reads the word at byte address `addr`.
    ///
    /// # Panics
    ///
    /// Panics if `addr` is not 4-byte aligned (a machine check in the
    /// simulator — kernels must be word aligned).
    pub fn read(&self, addr: u32) -> u32 {
        assert!(addr.is_multiple_of(4), "unaligned word read at {addr:#x}");
        self.words.get((addr / 4) as usize).copied().unwrap_or(0)
    }

    /// Writes the word at byte address `addr`, growing the store if needed.
    ///
    /// # Panics
    ///
    /// Panics if `addr` is not 4-byte aligned.
    pub fn write(&mut self, addr: u32, value: u32) {
        assert!(addr.is_multiple_of(4), "unaligned word write at {addr:#x}");
        let idx = (addr / 4) as usize;
        if self.words.len() <= idx {
            self.words.resize(idx + 1, 0);
        }
        self.words[idx] = value;
    }

    /// Bulk-writes a slice of words starting at `addr`.
    ///
    /// # Panics
    ///
    /// Panics if `addr` is not 4-byte aligned.
    pub fn write_words(&mut self, addr: u32, values: &[u32]) {
        for (i, v) in values.iter().enumerate() {
            self.write(addr + 4 * i as u32, *v);
        }
    }

    /// Reads `n` consecutive words starting at `addr`.
    ///
    /// # Panics
    ///
    /// Panics if `addr` is not 4-byte aligned.
    pub fn read_words(&self, addr: u32, n: usize) -> Vec<u32> {
        (0..n).map(|i| self.read(addr + 4 * i as u32)).collect()
    }

    /// Serializes the complete store (contents, bump pointer, allocation
    /// table) for a simulator checkpoint.
    pub fn encode_state(&self, enc: &mut Encoder) {
        enc.put_u32_slice(&self.words);
        enc.put_u32(self.next_free);
        enc.put_usize(self.allocations.len());
        for (label, base, size) in &self.allocations {
            enc.put_str(label);
            enc.put_u32(*base);
            enc.put_u32(*size);
        }
    }

    /// Restores state previously written by [`WordStore::encode_state`].
    ///
    /// # Errors
    ///
    /// Returns a [`CodecError`] on truncated or malformed input.
    pub fn restore_state(&mut self, dec: &mut Decoder<'_>) -> Result<(), CodecError> {
        self.words = dec.take_u32_vec()?;
        self.next_free = dec.take_u32()?;
        let n = dec.take_len(9)?;
        self.allocations = (0..n)
            .map(|_| Ok((dec.take_str()?, dec.take_u32()?, dec.take_u32()?)))
            .collect::<Result<_, CodecError>>()?;
        Ok(())
    }
}

/// Per-thread local memory (off-chip register spill / scratch).
///
/// Addresses are private per thread: thread `t` accessing byte `a` touches
/// physical word `t * stride + a`. Matches CUDA `.local` semantics.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LocalStore {
    stride_bytes: u32,
    words: Vec<u32>,
}

impl LocalStore {
    /// Creates a local store giving each thread `stride_bytes` of private
    /// memory (rounded up to a word).
    pub fn new(stride_bytes: u32) -> Self {
        LocalStore {
            stride_bytes: (stride_bytes + 3) & !3,
            words: Vec::new(),
        }
    }

    /// Bytes of private local memory per thread.
    pub fn stride_bytes(&self) -> u32 {
        self.stride_bytes
    }

    fn index(&self, tid: u32, addr: u32) -> usize {
        assert!(
            addr.is_multiple_of(4),
            "unaligned local access at {addr:#x}"
        );
        assert!(
            addr < self.stride_bytes.max(4),
            "local access {addr:#x} exceeds per-thread stride {}",
            self.stride_bytes
        );
        (tid as usize) * (self.stride_bytes as usize / 4) + (addr / 4) as usize
    }

    /// Reads thread `tid`'s local word at byte offset `addr`.
    ///
    /// # Panics
    ///
    /// Panics on unaligned access or when `addr` exceeds the per-thread
    /// stride.
    pub fn read(&self, tid: u32, addr: u32) -> u32 {
        let i = self.index(tid, addr);
        self.words.get(i).copied().unwrap_or(0)
    }

    /// Writes thread `tid`'s local word at byte offset `addr`.
    ///
    /// # Panics
    ///
    /// Panics on unaligned access or when `addr` exceeds the per-thread
    /// stride.
    pub fn write(&mut self, tid: u32, addr: u32, value: u32) {
        let i = self.index(tid, addr);
        if self.words.len() <= i {
            self.words.resize(i + 1, 0);
        }
        self.words[i] = value;
    }

    /// Serializes the store (stride and contents) for a simulator checkpoint.
    pub fn encode_state(&self, enc: &mut Encoder) {
        enc.put_u32(self.stride_bytes);
        enc.put_u32_slice(&self.words);
    }

    /// Restores state previously written by [`LocalStore::encode_state`].
    ///
    /// # Errors
    ///
    /// Returns a [`CodecError`] on truncated or malformed input.
    pub fn restore_state(&mut self, dec: &mut Decoder<'_>) -> Result<(), CodecError> {
        self.stride_bytes = dec.take_u32()?;
        self.words = dec.take_u32_vec()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn unwritten_memory_reads_zero() {
        let s = WordStore::new();
        assert_eq!(s.read(1024), 0);
    }

    #[test]
    fn write_then_read() {
        let mut s = WordStore::new();
        s.write(8, 0xdead_beef);
        assert_eq!(s.read(8), 0xdead_beef);
        assert_eq!(s.read(4), 0);
    }

    #[test]
    fn alloc_is_16_byte_aligned_and_disjoint() {
        let mut s = WordStore::new();
        let a = s.alloc(5, "a");
        let b = s.alloc(32, "b");
        assert_eq!(a % 16, 0);
        assert_eq!(b % 16, 0);
        assert!(b >= a + 5, "allocations must not overlap");
        assert_eq!(s.allocations().len(), 2);
    }

    #[test]
    #[should_panic(expected = "unaligned")]
    fn unaligned_read_panics() {
        WordStore::new().read(2);
    }

    #[test]
    fn bulk_words_roundtrip() {
        let mut s = WordStore::new();
        let base = s.alloc(16, "v");
        s.write_words(base, &[1, 2, 3, 4]);
        assert_eq!(s.read_words(base, 4), vec![1, 2, 3, 4]);
    }

    #[test]
    fn local_store_is_private_per_thread() {
        let mut l = LocalStore::new(16);
        l.write(0, 4, 11);
        l.write(1, 4, 22);
        assert_eq!(l.read(0, 4), 11);
        assert_eq!(l.read(1, 4), 22);
        assert_eq!(l.read(2, 4), 0);
    }

    #[test]
    #[should_panic(expected = "exceeds")]
    fn local_store_bounds_checked() {
        let mut l = LocalStore::new(8);
        l.write(0, 8, 1);
    }

    proptest! {
        #[test]
        fn wordstore_roundtrip(addr in (0u32..4096).prop_map(|a| a * 4), v: u32) {
            let mut s = WordStore::new();
            s.write(addr, v);
            prop_assert_eq!(s.read(addr), v);
        }

        #[test]
        fn allocations_never_overlap(sizes in proptest::collection::vec(1u32..257, 1..20)) {
            let mut s = WordStore::new();
            let mut spans: Vec<(u32, u32)> = Vec::new();
            for (i, sz) in sizes.iter().enumerate() {
                let base = s.alloc(*sz, &format!("a{i}"));
                for &(b, e) in &spans {
                    prop_assert!(base >= e || base + sz <= b, "overlap");
                }
                spans.push((base, base + sz));
            }
        }
    }
}
