//! Scheduling-model tests: block vs warp dispatch, resource-limited
//! occupancy, and block-slot accounting (paper §VI).

use simt_isa::assemble_named;
use simt_sim::{Gpu, GpuConfig, Launch, RunOutcome, SchedulingModel};

/// A kernel that spins for a while so occupancy can be observed.
const SPIN_SRC: &str = r#"
    .kernel main
    main:
        mov.u32 r1, 40
    loop:
        sub.s32 r1, r1, 1
        setp.gt.s32 p0, r1, 0
        @p0 bra loop
        exit
"#;

fn launch_spin(mut cfg: GpuConfig, threads: u32, block: u32) -> Gpu {
    cfg.num_sms = 1;
    let mut gpu = Gpu::builder(cfg).build();
    gpu.launch(Launch {
        program: assemble_named("spin", SPIN_SRC).unwrap(),
        entry: "main".into(),
        num_threads: threads,
        threads_per_block: block,
    })
    .expect("launch accepted");
    // One cycle so the dispatcher fills the SM.
    gpu.run(1).expect("fault-free");
    gpu
}

#[test]
fn block_scheduling_is_limited_by_block_slots() {
    let mut cfg = GpuConfig::tiny();
    cfg.scheduling = SchedulingModel::Block;
    cfg.max_blocks_per_sm = 2;
    cfg.max_threads_per_sm = 1024;
    cfg.registers_per_sm = 1 << 20;
    // Blocks of 8 threads; only 2 blocks may be resident -> 16 threads.
    let gpu = launch_spin(cfg, 256, 8);
    assert_eq!(gpu.sms()[0].threads_used(), 16);
}

#[test]
fn warp_scheduling_ignores_block_slots() {
    let mut cfg = GpuConfig::tiny();
    cfg.scheduling = SchedulingModel::Warp;
    cfg.max_blocks_per_sm = 2;
    cfg.max_threads_per_sm = 64;
    cfg.registers_per_sm = 1 << 20;
    // Warp scheduling fills to the thread limit regardless of block count.
    let gpu = launch_spin(cfg, 256, 8);
    assert_eq!(gpu.sms()[0].threads_used(), 64);
}

#[test]
fn register_file_bounds_occupancy() {
    let mut cfg = GpuConfig::tiny();
    cfg.scheduling = SchedulingModel::Warp;
    cfg.max_threads_per_sm = 1024;
    // The spin kernel uses 2 registers (r0..r1); allow only 40 registers:
    // 40 / 2 = 20 threads -> 5 warps of 4.
    cfg.registers_per_sm = 40;
    let gpu = launch_spin(cfg, 256, 8);
    assert_eq!(gpu.sms()[0].threads_used(), 20);
}

#[test]
fn block_resources_release_when_the_whole_block_finishes() {
    let mut cfg = GpuConfig::tiny();
    cfg.scheduling = SchedulingModel::Block;
    cfg.max_blocks_per_sm = 1;
    cfg.num_sms = 1;
    let mut gpu = Gpu::builder(cfg).build();
    gpu.launch(Launch {
        program: assemble_named("spin", SPIN_SRC).unwrap(),
        entry: "main".into(),
        num_threads: 64,
        threads_per_block: 8,
    })
    .expect("launch accepted");
    // With a single block slot, blocks run one after another but the whole
    // launch must still complete.
    let summary = gpu.run(10_000_000).expect("fault-free");
    assert_eq!(summary.outcome, RunOutcome::Completed);
    assert_eq!(summary.stats.threads_retired, 64);
}

#[test]
fn whole_grid_completes_under_both_models() {
    for model in [SchedulingModel::Block, SchedulingModel::Warp] {
        let mut cfg = GpuConfig::tiny();
        cfg.scheduling = model;
        let mut gpu = Gpu::builder(cfg).build();
        gpu.launch(Launch {
            program: assemble_named("spin", SPIN_SRC).unwrap(),
            entry: "main".into(),
            num_threads: 1000,
            threads_per_block: 8,
        })
        .expect("launch accepted");
        let summary = gpu.run(50_000_000).expect("fault-free");
        assert_eq!(summary.outcome, RunOutcome::Completed, "{model}");
        assert_eq!(summary.stats.threads_retired, 1000, "{model}");
    }
}

#[test]
fn oversized_final_block_is_handled() {
    // 13 threads with 8-thread blocks: a full block plus a ragged one.
    let mut cfg = GpuConfig::tiny();
    cfg.scheduling = SchedulingModel::Block;
    let mut gpu = Gpu::builder(cfg).build();
    gpu.launch(Launch {
        program: assemble_named("spin", SPIN_SRC).unwrap(),
        entry: "main".into(),
        num_threads: 13,
        threads_per_block: 8,
    })
    .expect("launch accepted");
    let summary = gpu.run(1_000_000).expect("fault-free");
    assert_eq!(summary.outcome, RunOutcome::Completed);
    assert_eq!(summary.stats.threads_launched, 13);
}
