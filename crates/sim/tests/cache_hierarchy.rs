//! Pipeline-level behaviour of the L1/L2 cache hierarchy: determinism
//! across phase-A parallelism, end-to-end stats conservation between the
//! cache levels, and snapshot-v4 kill/resume with caches enabled.

use simt_isa::assemble_named;
use simt_sim::{Gpu, GpuConfig, Launch, RunOutcome, Snapshot};

/// A mixed kernel: a per-thread strided load (cold misses), a re-read of
/// a warp-shared line inside a loop (hits + MSHR merges while the first
/// fill is still in flight), and a final store.
const MIX_SRC: &str = r#"
    .kernel main
    main:
        mov.u32 r1, %tid
        mul.lo.s32 r2, r1, 4
        and.b32 r5, r1, 7
        mul.lo.s32 r5, r5, 4
        mov.u32 r6, 12
        mov.u32 r7, 0
    loop:
        ld.global.u32 r3, [r2+0]
        ld.global.u32 r4, [r5+0]
        add.s32 r7, r7, r3
        add.s32 r7, r7, r4
        sub.s32 r6, r6, 1
        setp.gt.s32 p0, r6, 0
        @p0 bra loop
        st.global.u32 [r2+0], r7
        exit
"#;

const N_THREADS: u32 = 128;

/// `GpuConfig::tiny` with a 4 KiB L1 and a 16 KiB L2 — small enough that
/// the mixed kernel exercises every path (hit, miss, merge, fill).
fn cached_config() -> GpuConfig {
    let mut cfg = GpuConfig::tiny();
    cfg.mem = cfg.mem.with_l1(4 * 1024).with_l2(16 * 1024);
    cfg
}

fn build(cfg: GpuConfig, parallelism: usize) -> Gpu {
    let program = assemble_named("mix", MIX_SRC).unwrap();
    let mut gpu = Gpu::builder(cfg).parallelism(parallelism).build();
    gpu.mem_mut().alloc_global(N_THREADS * 4, "buf");
    gpu.launch(Launch {
        program,
        entry: "main".into(),
        num_threads: N_THREADS,
        threads_per_block: 8,
    })
    .expect("launch accepted");
    gpu
}

fn words(gpu: &Gpu) -> Vec<u32> {
    (0..N_THREADS)
        .map(|t| gpu.mem().read_u32(simt_isa::Space::Global, t * 4))
        .collect()
}

/// With the hierarchy enabled, the batched phase-B path must stay
/// bit-identical at every phase-A parallelism level — stats, cache
/// counters, interconnect accounting, and memory contents.
#[test]
fn cached_execution_is_bit_identical_across_parallelism() {
    let run = |parallelism: usize| {
        let mut gpu = build(cached_config(), parallelism);
        let summary = gpu.run(50_000_000).expect("fault-free");
        assert_eq!(summary.outcome, RunOutcome::Completed);
        (
            summary.stats,
            summary.traffic,
            gpu.l1_stats(),
            gpu.mem().l2_stats(),
            gpu.mem().icnt_conflicts(),
            gpu.mem().icnt_busy().to_vec(),
            words(&gpu),
        )
    };
    let serial = run(1);
    for parallelism in [2usize, 4] {
        let parallel = run(parallelism);
        assert_eq!(serial.0, parallel.0, "stats at parallelism {parallelism}");
        assert_eq!(serial.1, parallel.1, "traffic at parallelism {parallelism}");
        assert_eq!(serial.2, parallel.2, "L1 at parallelism {parallelism}");
        assert_eq!(serial.3, parallel.3, "L2 at parallelism {parallelism}");
        assert_eq!(
            serial.4, parallel.4,
            "icnt conflicts at parallelism {parallelism}"
        );
        assert_eq!(
            serial.5, parallel.5,
            "icnt busy at parallelism {parallelism}"
        );
        assert_eq!(serial.6, parallel.6, "memory at parallelism {parallelism}");
    }
}

/// The kernel was built to exercise every L1 path — make sure it does,
/// and that the per-level counters conserve: every probed line is a hit
/// or a miss, and the L2 sees exactly the fetches the L1 could not merge
/// (the line size is pinned to the DRAM segment size so one missed line
/// is one L2 probe).
#[test]
fn cache_level_stats_conserve() {
    let mut cfg = cached_config();
    cfg.mem.l1_line_bytes = cfg.mem.segment_bytes;
    let mut gpu = build(cfg, 1);
    let summary = gpu.run(50_000_000).expect("fault-free");
    assert_eq!(summary.outcome, RunOutcome::Completed);

    let (hits, misses, merges, _stalls) = gpu.l1_stats().expect("L1 enabled");
    let (l2_hits, l2_misses) = gpu.mem().l2_stats().expect("L2 enabled");
    assert!(hits > 0, "kernel should produce L1 hits");
    assert!(misses > 0, "kernel should produce L1 misses");
    assert!(merges > 0, "kernel should produce MSHR merges");
    assert!(
        merges <= misses,
        "every merge is also a miss: {merges} !<= {misses}"
    );
    // The kernel's only off-chip load traffic is L1 miss fetches (no
    // read-only regions, so no texture fills), and stores bypass the L2.
    assert_eq!(
        l2_hits + l2_misses,
        misses - merges,
        "L2 must see exactly the unmerged L1 misses"
    );
    assert!(l2_hits > 0, "re-read lines should hit in the L2");
}

/// Flat default machines must report no cache-hierarchy telemetry at
/// all — the knobs are off, not zeroed.
#[test]
fn flat_machine_reports_no_hierarchy_stats() {
    let mut gpu = build(GpuConfig::tiny(), 1);
    let summary = gpu.run(50_000_000).expect("fault-free");
    assert_eq!(summary.outcome, RunOutcome::Completed);
    assert_eq!(gpu.l1_stats(), None);
    assert_eq!(gpu.mem().l2_stats(), None);
    assert_eq!(gpu.mem().icnt_conflicts(), 0);
}

/// Kill/resume with the hierarchy enabled: a machine restored from a v4
/// snapshot — including L1 tag state and mid-flight MSHR entries taken
/// while fills were outstanding — must continue bit-identically.
#[test]
fn cached_checkpoint_resume_is_bit_identical() {
    let mut reference = build(cached_config(), 1);
    let ref_summary = reference.run(50_000_000).expect("fault-free");
    assert_eq!(ref_summary.outcome, RunOutcome::Completed);
    let (ref_hits, ref_misses, ref_merges, ref_stalls) = reference.l1_stats().expect("L1 enabled");

    // Interrupt points straddle the first DRAM round trip so at least one
    // snapshot is taken while MSHR fills are outstanding.
    for interrupt_at in [1u64, 30, 150, 700] {
        let mut gpu = build(cached_config(), 1);
        gpu.run(interrupt_at).expect("fault-free prefix");
        let bytes = gpu.checkpoint().expect("encodable").to_bytes();
        let snapshot = Snapshot::from_bytes(&bytes).expect("frame intact");
        let mut resumed = Gpu::restore(&snapshot).expect("restores");
        assert_eq!(resumed.now(), gpu.now());
        let summary = resumed.run(50_000_000).expect("fault-free tail");
        assert_eq!(
            summary.stats, ref_summary.stats,
            "stats diverged after resume at cycle {interrupt_at}"
        );
        assert_eq!(
            summary.traffic, ref_summary.traffic,
            "traffic diverged after resume at cycle {interrupt_at}"
        );
        assert_eq!(
            resumed.l1_stats(),
            Some((ref_hits, ref_misses, ref_merges, ref_stalls)),
            "L1 counters diverged after resume at cycle {interrupt_at}"
        );
        assert_eq!(
            resumed.mem().l2_stats(),
            reference.mem().l2_stats(),
            "L2 counters diverged after resume at cycle {interrupt_at}"
        );
        assert_eq!(
            words(&resumed),
            words(&reference),
            "memory diverged after resume at cycle {interrupt_at}"
        );
    }
}

/// Resuming at a different phase-A parallelism than the killed run is
/// also bit-identical — the snapshot carries machine state only.
#[test]
fn cached_resume_commutes_with_parallelism() {
    let mut reference = build(cached_config(), 1);
    let ref_summary = reference.run(50_000_000).expect("fault-free");

    let mut gpu = build(cached_config(), 4);
    gpu.run(300).expect("fault-free prefix");
    let snapshot = gpu.checkpoint().expect("encodable");
    let mut resumed = Gpu::restore(&snapshot)
        .expect("restores")
        .with_parallelism(2);
    let summary = resumed.run(50_000_000).expect("fault-free tail");
    assert_eq!(summary.stats, ref_summary.stats);
    assert_eq!(resumed.l1_stats(), reference.l1_stats());
    assert_eq!(words(&resumed), words(&reference));
}

/// On a faulting cycle under `FaultPolicy::Abort`, the committed SMs'
/// phase-B work must still flow through the banked interconnect and the
/// L2 — not the legacy flat-fabric drain. The witness is conservation:
/// every coalesced global transaction the frontends recorded must have
/// paid its flit traversal on some interconnect bank, including the
/// transactions issued on the very cycle the fault aborted the run.
#[test]
fn abort_cycle_commits_through_the_banked_interconnect() {
    use simt_isa::Space;
    use simt_sim::SimError;

    // SM 0's warps store every issue slot; SM 1's warps spin `k`
    // iterations, then issue a misaligned store (trapped at validation,
    // so it records no traffic of its own). Sweeping `k` shifts the
    // fault cycle across the store loop's phase, so at least one run
    // aborts with an SM 0 store staged in that same cycle.
    for k in [4u32, 5, 6, 7] {
        let src = format!(
            r#"
            .kernel main
            main:
                mov.u32 r1, %tid
                mov.u32 r2, 0
                setp.gt.s32 p0, r1, 31
                @p0 bra delay
            store:
                st.global.u32 [r2+0], r1
                st.global.u32 [r2+0], r1
                st.global.u32 [r2+0], r1
                bra store
            delay:
                mov.u32 r6, {k}
            wait:
                sub.s32 r6, r6, 1
                setp.gt.s32 p0, r6, 0
                @p0 bra wait
                mov.u32 r3, 1
                st.global.u32 [r3+0], r1
                exit
        "#
        );
        let cfg = cached_config();
        let flit = u64::from(cfg.mem.icnt_flit_cycles.max(1));
        let mut gpu = Gpu::builder(cfg).build();
        gpu.mem_mut().alloc_global(64, "buf");
        // `tiny` admits 32 threads per SM, so warp-granular dispatch
        // fills SM 0 with the store-loop warps (tids 0..32) and SM 1
        // with the delay warps (tids 32..64).
        gpu.launch(Launch {
            program: assemble_named("abort-icnt", &src).unwrap(),
            entry: "main".into(),
            num_threads: 64,
            threads_per_block: 32,
        })
        .expect("launch accepted");

        let err = gpu.run(50_000).expect_err("misaligned store must abort");
        let SimError::Fault(fault) = err else {
            panic!("expected a fault, got {err}");
        };
        assert_eq!(fault.sm, 1, "delay warps should land on SM 1 (k={k})");

        let mut transactions = gpu.mem().traffic().space(Space::Global).transactions;
        for sm in gpu.sms() {
            transactions += sm.traffic().space(Space::Global).transactions;
        }
        assert!(transactions > 0, "store loop should have issued (k={k})");
        let busy: u64 = gpu.mem().icnt_busy().iter().sum();
        assert_eq!(
            busy,
            flit * transactions,
            "every recorded transaction must traverse an icnt bank (k={k})"
        );
    }
}

/// Corrupt and truncated snapshot files must be rejected by the frame
/// parser — never silently restored into a half-initialised machine.
#[test]
fn corrupt_and_truncated_snapshots_are_rejected() {
    let mut gpu = build(cached_config(), 1);
    gpu.run(200).expect("fault-free prefix");
    let bytes = gpu.checkpoint().expect("encodable").to_bytes();
    assert!(Snapshot::from_bytes(&bytes).is_ok());

    // Flip one payload byte: the checksum must catch it.
    let mut corrupt = bytes.clone();
    let mid = corrupt.len() / 2;
    corrupt[mid] ^= 0x40;
    assert!(
        Snapshot::from_bytes(&corrupt).is_err(),
        "bit-flipped snapshot accepted"
    );

    // Truncate at several points, including inside the header.
    for keep in [0usize, 4, 8, bytes.len() / 2, bytes.len() - 1] {
        assert!(
            Snapshot::from_bytes(&bytes[..keep]).is_err(),
            "snapshot truncated to {keep} bytes accepted"
        );
    }
}

/// A flat machine must refuse a snapshot taken on a cached machine (and
/// vice versa is covered by the config being part of the payload): the
/// config travels with the snapshot, so the restored machine always has
/// the hierarchy the snapshot was taken with.
#[test]
fn restored_machine_keeps_the_snapshot_config() {
    let mut gpu = build(cached_config(), 1);
    gpu.run(100).expect("fault-free prefix");
    let snapshot = gpu.checkpoint().expect("encodable");
    let resumed = Gpu::restore(&snapshot).expect("restores");
    assert!(resumed.config().mem.l1_enabled());
    assert!(resumed.config().mem.l2_enabled());
}
