//! Lockstep differential oracle suite: generated programs must produce
//! identical functional results on the cycle-level `Gpu` (parallel 1 and
//! 4, spawn-bank conflicts on and off, both spawn policies) and the
//! independent `RefMachine`.
//!
//! The deterministic corpus plus the proptest sweep keep the oracle
//! honest in `cargo test`; the `fuzz_diff` bin runs the same comparison
//! at campaign scale (1000+ programs in CI).

use proptest::prelude::*;
use simt_isa::gen::GenConfig;
use simt_sim::oracle::run_case;

fn assert_case(cfg: &GenConfig) {
    let report = run_case(cfg);
    assert!(
        report.passed(),
        "differential mismatch for `{}`:\n  {}",
        cfg.to_kv(),
        report.mismatch.expect("mismatch present")
    );
}

/// A fixed corpus chosen to span the feature matrix: spawn depth 0-2,
/// guarded spawns, loops, every memory space, vectors, floats.
#[test]
fn deterministic_corpus_matches() {
    for seed in 0..40 {
        assert_case(&GenConfig::from_seed(seed));
    }
}

#[test]
fn deep_spawn_chains_match() {
    for seed in [7, 19, 23] {
        let cfg = GenConfig {
            spawn_levels: 2,
            spawn_guarded: false,
            ..GenConfig::from_seed(seed)
        };
        let report = run_case(&cfg);
        assert!(report.passed(), "{:?}", report.mismatch);
        assert!(
            report.ref_spawned > 0,
            "no children spawned for seed {seed}"
        );
    }
}

#[test]
fn guarded_spawns_match() {
    for seed in [3, 11] {
        assert_case(&GenConfig {
            spawn_levels: 1,
            spawn_guarded: true,
            ..GenConfig::from_seed(seed)
        });
    }
}

#[test]
fn all_memory_spaces_match() {
    for seed in [5, 13] {
        assert_case(&GenConfig {
            use_shared: true,
            use_local: true,
            use_const: true,
            use_v4: true,
            ..GenConfig::from_seed(seed)
        });
    }
}

#[test]
fn partial_warps_match() {
    // ntid=7 leaves a 3-lane warp; spawning from it exercises partial
    // formation groups.
    for seed in [2, 29] {
        assert_case(&GenConfig {
            ntid: 7,
            spawn_levels: 1,
            ..GenConfig::from_seed(seed)
        });
    }
}

#[test]
fn loop_nests_with_floats_match() {
    for seed in [17, 31] {
        assert_case(&GenConfig {
            max_loop_depth: 2,
            use_float: true,
            ..GenConfig::from_seed(seed)
        });
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn random_programs_match(seed in any::<u64>()) {
        assert_case(&GenConfig::from_seed(seed));
    }
}
