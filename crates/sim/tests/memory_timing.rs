//! Timing-model behaviour visible at the pipeline level: texture-cache
//! hits, constant-cache broadcasts, stack coalescing, and sequential
//! launches.

use simt_isa::assemble_named;
use simt_sim::{Gpu, GpuConfig, Launch, LaunchError, RunOutcome};

fn run_src(src: &str, threads: u32, mark_read_only: Option<(u32, u32)>) -> u64 {
    let program = assemble_named("t", src).unwrap();
    let mut gpu = Gpu::builder(GpuConfig::tiny()).build();
    gpu.mem_mut().alloc_global(1 << 16, "buf");
    if let Some((base, len)) = mark_read_only {
        gpu.mem_mut().mark_read_only(base, len);
    }
    gpu.launch(Launch {
        program,
        entry: "main".into(),
        num_threads: threads,
        threads_per_block: 8,
    })
    .expect("launch accepted");
    let s = gpu.run(10_000_000).expect("fault-free");
    assert_eq!(s.outcome, RunOutcome::Completed);
    s.stats.cycles
}

/// Every thread reads the same global word many times.
const REREAD_SRC: &str = r#"
    .kernel main
    main:
        mov.u32 r1, 16
        mov.u32 r2, 0
    loop:
        ld.global.u32 r3, [r2+0]
        sub.s32 r1, r1, 1
        setp.gt.s32 p0, r1, 0
        @p0 bra loop
        exit
"#;

#[test]
fn texture_cache_accelerates_rereads() {
    let cached = run_src(REREAD_SRC, 32, Some((0, 4096)));
    let uncached = run_src(REREAD_SRC, 32, None);
    assert!(
        cached < uncached,
        "cached {cached} cycles !< uncached {uncached}"
    );
}

#[test]
fn constant_cache_makes_const_loads_cheap() {
    let const_src = r#"
        .kernel main
        main:
            mov.u32 r1, 16
            mov.u32 r2, 0
        loop:
            ld.const.u32 r3, [r2+0]
            sub.s32 r1, r1, 1
            setp.gt.s32 p0, r1, 0
            @p0 bra loop
            exit
    "#;
    let const_cycles = run_src(const_src, 32, None);
    let global_cycles = run_src(REREAD_SRC, 32, None);
    assert!(
        const_cycles < global_cycles,
        "const {const_cycles} !< uncached global {global_cycles}"
    );
}

#[test]
fn sequential_launches_share_memory_state() {
    // Launch 1 writes, launch 2 increments the same buffer.
    let write_src = r#"
        .kernel main
        main:
            mov.u32 r1, %tid
            mul.lo.s32 r2, r1, 4
            add.s32 r3, r1, 100
            st.global.u32 [r2+0], r3
            exit
    "#;
    let incr_src = r#"
        .kernel main
        main:
            mov.u32 r1, %tid
            mul.lo.s32 r2, r1, 4
            ld.global.u32 r3, [r2+0]
            add.s32 r3, r3, 1
            st.global.u32 [r2+0], r3
            exit
    "#;
    let mut gpu = Gpu::builder(GpuConfig::tiny()).build();
    gpu.mem_mut().alloc_global(64 * 4, "buf");
    gpu.launch(Launch {
        program: assemble_named("w", write_src).unwrap(),
        entry: "main".into(),
        num_threads: 64,
        threads_per_block: 8,
    })
    .expect("launch accepted");
    assert_eq!(
        gpu.run(1_000_000).expect("fault-free").outcome,
        RunOutcome::Completed
    );
    gpu.launch(Launch {
        program: assemble_named("i", incr_src).unwrap(),
        entry: "main".into(),
        num_threads: 64,
        threads_per_block: 8,
    })
    .expect("launch accepted");
    assert_eq!(
        gpu.run(1_000_000).expect("fault-free").outcome,
        RunOutcome::Completed
    );
    for t in 0..64u32 {
        assert_eq!(
            gpu.mem().read_u32(simt_isa::Space::Global, t * 4),
            t + 101,
            "thread {t}"
        );
    }
}

#[test]
fn relaunch_before_completion_is_rejected() {
    let spin = r#"
        .kernel main
        main:
            mov.u32 r1, 1000
        loop:
            sub.s32 r1, r1, 1
            setp.gt.s32 p0, r1, 0
            @p0 bra loop
            exit
    "#;
    let mut gpu = Gpu::builder(GpuConfig::tiny()).build();
    let p = assemble_named("spin", spin).unwrap();
    gpu.launch(Launch {
        program: p.clone(),
        entry: "main".into(),
        num_threads: 64,
        threads_per_block: 8,
    })
    .expect("launch accepted");
    gpu.run(10).expect("fault-free"); // far from done
    let second = gpu.launch(Launch {
        program: p,
        entry: "main".into(),
        num_threads: 64,
        threads_per_block: 8,
    });
    assert_eq!(second, Err(LaunchError::LaunchActive));
}
