//! Differential testing: the cycle-level SIMT pipeline and the functional
//! single-thread interpreter must compute identical results on randomly
//! generated programs (straight-line prologues, data-dependent loops,
//! predicated code). This cross-validates the PDOM stack, guard handling,
//! and the lane datapath against an independent executor.

use proptest::prelude::*;
use simt_isa::assemble_named;
use simt_mem::{MemConfig, MemoryFabric};
use simt_sim::{interpret_thread, Gpu, GpuConfig, Launch};

const N_THREADS: u32 = 16;
const WORDS_PER_THREAD: u32 = 4;

/// One random straight-line operation over registers r2..r6.
#[derive(Debug, Clone)]
struct RandomOp {
    mnemonic: &'static str,
    dst: u8,
    a: u8,
    b: OperandSpec,
}

#[derive(Debug, Clone)]
enum OperandSpec {
    Reg(u8),
    Imm(i32),
}

impl RandomOp {
    fn emit(&self) -> String {
        let b = match self.b {
            OperandSpec::Reg(r) => format!("r{r}"),
            OperandSpec::Imm(v) => format!("{v}"),
        };
        format!("    {} r{}, r{}, {b}\n", self.mnemonic, self.dst, self.a)
    }
}

fn arb_op() -> impl Strategy<Value = RandomOp> {
    let mnemonics = prop_oneof![
        Just("add.s32"),
        Just("sub.s32"),
        Just("mul.lo.s32"),
        Just("and.b32"),
        Just("or.b32"),
        Just("xor.b32"),
        Just("min.s32"),
        Just("max.s32"),
        // Clamp-semantics shifts and trapless division (PTX: x/0 = 0,
        // MIN/-1 wraps) — the operand pool's special immediates hit the
        // edge amounts.
        Just("shl.b32"),
        Just("shr.u32"),
        Just("shr.s32"),
        Just("div.s32"),
        Just("rem.s32"),
        // Float ops run on raw integer bit patterns; both executors share
        // IEEE semantics, so even NaN payloads must agree bitwise.
        Just("add.f32"),
        Just("mul.f32"),
        Just("min.f32"),
        Just("max.f32"),
    ];
    (mnemonics, 2u8..7, 1u8..7, arb_operand()).prop_map(|(mnemonic, dst, a, b)| RandomOp {
        mnemonic,
        dst,
        a,
        b,
    })
}

fn arb_operand() -> impl Strategy<Value = OperandSpec> {
    prop_oneof![
        (1u8..7).prop_map(OperandSpec::Reg),
        (-100i32..100).prop_map(OperandSpec::Imm),
        // Edge immediates: zero divisors, MIN/-1 overflow, out-of-range
        // shift amounts.
        prop_oneof![
            Just(0i32),
            Just(-1),
            Just(i32::MIN),
            Just(i32::MAX),
            Just(31),
            Just(32),
            Just(33),
            Just(255),
        ]
        .prop_map(OperandSpec::Imm),
    ]
}

/// Builds a program: prologue ops, a tid-dependent loop around body ops,
/// a predicated epilogue op, then stores r2..r5.
fn build_program(prologue: &[RandomOp], body: &[RandomOp], guarded: &RandomOp) -> String {
    let mut s = String::from(".kernel main\nmain:\n    mov.u32 r1, %tid\n");
    // Seed registers deterministically from tid.
    for r in 2..7 {
        s.push_str(&format!("    mul.lo.s32 r{r}, r1, {}\n", r * 7 + 1));
        s.push_str(&format!("    add.s32 r{r}, r{r}, {}\n", r * 13 + 5));
    }
    for op in prologue {
        s.push_str(&op.emit());
    }
    // Loop with tid-dependent trip count (1..=4).
    s.push_str("    and.b32 r7, r1, 3\n    add.s32 r7, r7, 1\nloop:\n");
    for op in body {
        s.push_str(&op.emit());
    }
    s.push_str("    sub.s32 r7, r7, 1\n    setp.gt.s32 p0, r7, 0\n    @p0 bra loop\n");
    // A guarded op depending on a data predicate.
    s.push_str("    and.b32 r8, r2, 1\n    setp.eq.s32 p1, r8, 0\n");
    s.push_str(&format!("@p1 {}", guarded.emit().trim_start()));
    // Store results.
    s.push_str(&format!(
        "    mul.lo.s32 r9, r1, {}\n",
        WORDS_PER_THREAD * 4
    ));
    for (i, r) in (2..6).enumerate() {
        s.push_str(&format!("    st.global.u32 [r9+{}], r{r}\n", i * 4));
    }
    s.push_str("    exit\n");
    s
}

fn run_on_pipeline(src: &str) -> Vec<u32> {
    let program = assemble_named("rand-pipeline", src).expect("assembles");
    let mut gpu = Gpu::builder(GpuConfig::tiny()).build();
    gpu.mem_mut()
        .alloc_global(N_THREADS * WORDS_PER_THREAD * 4, "out");
    gpu.launch(Launch {
        program,
        entry: "main".into(),
        num_threads: N_THREADS,
        threads_per_block: 8,
    })
    .expect("launch accepted");
    let summary = gpu.run(50_000_000).expect("fault-free");
    assert_eq!(summary.outcome, simt_sim::RunOutcome::Completed);
    gpu.mem()
        .host_read_global(0, (N_THREADS * WORDS_PER_THREAD) as usize)
}

fn run_on_interpreter(src: &str) -> Vec<u32> {
    let program = assemble_named("rand-interp", src).expect("assembles");
    let mut mem = MemoryFabric::new(MemConfig::fx5800());
    mem.alloc_global(N_THREADS * WORDS_PER_THREAD * 4, "out");
    for tid in 0..N_THREADS {
        interpret_thread(&program, tid, 0, N_THREADS, &mut mem).expect("interprets");
    }
    mem.host_read_global(0, (N_THREADS * WORDS_PER_THREAD) as usize)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn pipeline_matches_interpreter(
        prologue in proptest::collection::vec(arb_op(), 0..6),
        body in proptest::collection::vec(arb_op(), 1..6),
        guarded in arb_op(),
    ) {
        let src = build_program(&prologue, &body, &guarded);
        let a = run_on_pipeline(&src);
        let b = run_on_interpreter(&src);
        prop_assert_eq!(a, b, "program:\n{}", src);
    }
}

#[test]
fn division_and_shift_edges_match() {
    // Deterministic exposure of the PTX edge cases the random pool only
    // hits probabilistically: divide-by-zero, i32::MIN / -1, and shift
    // amounts of exactly 32/33/255.
    let src = r#"
        .kernel main
        main:
            mov.u32 r1, %tid
            mov.u32 r2, -2147483648
            mov.u32 r3, -1
            div.s32 r4, r2, r3
            rem.s32 r5, r2, r3
            mov.u32 r6, 0
            div.s32 r6, r1, r6
            mov.u32 r7, 0
            rem.s32 r7, r1, r7
            add.s32 r4, r4, r6
            add.s32 r5, r5, r7
            shl.b32 r6, r1, 32
            shr.u32 r7, r2, 33
            shr.s32 r8, r2, 255
            add.s32 r6, r6, r7
            add.s32 r6, r6, r8
            mul.lo.s32 r9, r1, 16
            st.global.u32 [r9+0], r4
            st.global.u32 [r9+4], r5
            st.global.u32 [r9+8], r6
            st.global.u32 [r9+12], r1
            exit
    "#;
    let a = run_on_pipeline(src);
    let b = run_on_interpreter(src);
    assert_eq!(a, b);
    // Spot-check thread 0: MIN/-1 wraps to MIN, x/0 and x%0 are 0,
    // shifts ≥ 32 clamp (shr.s32 of MIN fills with the sign bit).
    assert_eq!(a[0], 0x8000_0000);
    assert_eq!(a[1], 0);
    assert_eq!(a[2], 0u32.wrapping_add(0).wrapping_add(0xffff_ffff));
}

#[test]
fn divergent_nested_control_flow_matches() {
    // A hand-written nasty case: nested loops + guarded exits.
    let src = r#"
        .kernel main
        main:
            mov.u32 r1, %tid
            and.b32 r2, r1, 7
            mov.u32 r3, 0
            mov.u32 r4, 0
        outer:
            and.b32 r5, r1, 3
        inner:
            add.s32 r3, r3, 1
            sub.s32 r5, r5, 1
            setp.ge.s32 p0, r5, 0
            @p0 bra inner
            add.s32 r4, r4, 1
            sub.s32 r2, r2, 1
            setp.gt.s32 p1, r2, 0
            @p1 bra outer
            mul.lo.s32 r6, r1, 8
            st.global.u32 [r6+0], r3
            st.global.u32 [r6+4], r4
            exit
    "#;
    let program = assemble_named("nested", src).unwrap();
    let mut gpu = Gpu::builder(GpuConfig::tiny()).build();
    gpu.mem_mut().alloc_global(32 * 8, "out");
    gpu.launch(Launch {
        program: program.clone(),
        entry: "main".into(),
        num_threads: 32,
        threads_per_block: 8,
    })
    .expect("launch accepted");
    assert_eq!(
        gpu.run(10_000_000).expect("fault-free").outcome,
        simt_sim::RunOutcome::Completed
    );

    let mut mem = MemoryFabric::new(MemConfig::fx5800());
    mem.alloc_global(32 * 8, "out");
    for tid in 0..32 {
        interpret_thread(&program, tid, 0, 32, &mut mem).unwrap();
    }
    assert_eq!(
        gpu.mem().host_read_global(0, 64),
        mem.host_read_global(0, 64)
    );
}
