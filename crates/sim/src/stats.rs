//! Simulation statistics: IPC, divergence timelines, completion counters.

use serde::{Deserialize, Serialize};
use simt_isa::codec::{CodecError, Decoder, Encoder};
use std::fmt;

/// Number of warp-occupancy buckets in divergence breakdowns.
///
/// Bucket 0 counts *idle* SM-cycles (no warp issued); buckets `1..=8`
/// count issues with `4(b-1)+1 ..= 4b` active lanes — the paper's
/// `W1:4 .. W29:32` categories of Figs. 3/7/9.
pub const OCCUPANCY_BUCKETS: usize = 9;

/// Divergence breakdown over time: per window, how many SM-cycles issued a
/// warp with each occupancy level (the data behind paper Figs. 3, 7, 9).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DivergenceTimeline {
    window: u64,
    warp_size: u32,
    counts: Vec<[u64; OCCUPANCY_BUCKETS]>,
    /// Cached index of the window most recently written (the issue path
    /// hits the same window millions of times in a row; this avoids a
    /// 64-bit division per recorded cycle). Pure cache: excluded from
    /// equality, serialization, and the checkpoint codec.
    #[serde(skip)]
    cur_idx: usize,
    /// First cycle of the cached window.
    #[serde(skip)]
    cur_start: u64,
}

impl PartialEq for DivergenceTimeline {
    fn eq(&self, other: &Self) -> bool {
        self.window == other.window
            && self.warp_size == other.warp_size
            && self.counts == other.counts
    }
}

impl Eq for DivergenceTimeline {}

impl DivergenceTimeline {
    /// Creates a timeline with `window`-cycle buckets.
    ///
    /// # Panics
    ///
    /// Panics if `window` is zero.
    pub fn new(window: u64, warp_size: u32) -> Self {
        assert!(window > 0, "window must be positive");
        DivergenceTimeline {
            window,
            warp_size,
            counts: Vec::new(),
            cur_idx: 0,
            cur_start: 0,
        }
    }

    #[inline]
    fn bucket_for(&self, active_lanes: u32) -> usize {
        if active_lanes == 0 {
            return 0;
        }
        // Scale to the paper's 4-lane-wide buckets regardless of warp size.
        let per_bucket = (self.warp_size as usize)
            .div_ceil(OCCUPANCY_BUCKETS - 1)
            .max(1);
        // Common warp sizes give a power-of-two bucket width; shift instead
        // of dividing by a runtime value on the per-issue path.
        let scaled = if per_bucket.is_power_of_two() {
            ((active_lanes as usize) - 1) >> per_bucket.trailing_zeros()
        } else {
            ((active_lanes as usize) - 1) / per_bucket
        };
        (scaled + 1).min(OCCUPANCY_BUCKETS - 1)
    }

    #[inline]
    fn slot(&mut self, cycle: u64) -> &mut [u64; OCCUPANCY_BUCKETS] {
        // Fast path: same window as the previous record (a default-reset
        // cache of `(0, 0)` is itself valid for window 0 once it exists).
        if cycle.wrapping_sub(self.cur_start) < self.window && self.cur_idx < self.counts.len() {
            return &mut self.counts[self.cur_idx];
        }
        let idx = (cycle / self.window) as usize;
        if self.counts.len() <= idx {
            self.counts.resize(idx + 1, [0; OCCUPANCY_BUCKETS]);
        }
        self.cur_idx = idx;
        self.cur_start = idx as u64 * self.window;
        &mut self.counts[idx]
    }

    /// Records one SM-cycle that issued a warp with `active_lanes` lanes.
    pub fn record_issue(&mut self, cycle: u64, active_lanes: u32) {
        let b = self.bucket_for(active_lanes);
        self.slot(cycle)[b] += 1;
    }

    /// Records one idle SM-cycle (no warp ready).
    pub fn record_idle(&mut self, cycle: u64) {
        self.slot(cycle)[0] += 1;
    }

    /// Records `count` consecutive idle SM-cycles starting at `from`,
    /// chunked across window boundaries — identical to calling
    /// [`DivergenceTimeline::record_idle`] once per cycle.
    pub fn record_idle_span(&mut self, from: u64, count: u64) {
        let end = from + count;
        let mut c = from;
        while c < end {
            let win_end = (c / self.window + 1) * self.window;
            let n = win_end.min(end) - c;
            self.slot(c)[0] += n;
            c += n;
        }
    }

    /// The window width in cycles.
    pub fn window(&self) -> u64 {
        self.window
    }

    /// Raw per-window counts (`[idle, W1:4, W5:8, …]`).
    pub fn windows(&self) -> &[[u64; OCCUPANCY_BUCKETS]] {
        &self.counts
    }

    /// Bucket labels matching [`DivergenceTimeline::windows`] columns.
    pub fn labels(&self) -> Vec<String> {
        let per_bucket = (self.warp_size as usize)
            .div_ceil(OCCUPANCY_BUCKETS - 1)
            .max(1);
        let mut v = vec!["idle".to_string()];
        for b in 1..OCCUPANCY_BUCKETS {
            let lo = (b - 1) * per_bucket + 1;
            let hi = (b * per_bucket).min(self.warp_size as usize);
            v.push(format!("W{lo}:{hi}"));
        }
        v
    }

    /// Renders the timeline as AerialVision-style CSV: one row per window,
    /// one column per occupancy bucket.
    pub fn to_csv(&self) -> String {
        let mut out = String::from("cycle_end");
        for l in self.labels() {
            out.push(',');
            out.push_str(&l);
        }
        out.push('\n');
        for (i, w) in self.counts.iter().enumerate() {
            out.push_str(&((i as u64 + 1) * self.window).to_string());
            for v in w {
                out.push(',');
                out.push_str(&v.to_string());
            }
            out.push('\n');
        }
        out
    }

    /// Merges another timeline into this one (element-wise sum of counts).
    ///
    /// Shards index windows by *absolute* cycle, so merging per-SM shards
    /// reproduces exactly the timeline a single serial recorder would have
    /// built.
    ///
    /// # Panics
    ///
    /// Panics if the timelines have different window widths or warp sizes.
    pub fn merge(&mut self, other: &DivergenceTimeline) {
        assert_eq!(self.window, other.window, "merging mismatched windows");
        assert_eq!(self.warp_size, other.warp_size, "merging mismatched warps");
        if self.counts.len() < other.counts.len() {
            self.counts
                .resize(other.counts.len(), [0; OCCUPANCY_BUCKETS]);
        }
        for (dst, src) in self.counts.iter_mut().zip(&other.counts) {
            for (d, s) in dst.iter_mut().zip(src) {
                *d += s;
            }
        }
    }

    /// Serializes the timeline's counts for a simulator checkpoint (window
    /// width and warp size are configuration, re-derived on restore).
    pub(crate) fn encode_state(&self, enc: &mut Encoder) {
        enc.put_usize(self.counts.len());
        for w in &self.counts {
            for &v in w {
                enc.put_u64(v);
            }
        }
    }

    /// Restores counts previously written by
    /// [`DivergenceTimeline::encode_state`].
    pub(crate) fn restore_state(&mut self, dec: &mut Decoder<'_>) -> Result<(), CodecError> {
        let n = dec.take_len(8 * OCCUPANCY_BUCKETS)?;
        let mut counts = Vec::with_capacity(n);
        for _ in 0..n {
            let mut w = [0u64; OCCUPANCY_BUCKETS];
            for v in &mut w {
                *v = dec.take_u64()?;
            }
            counts.push(w);
        }
        self.counts = counts;
        Ok(())
    }

    /// Average active lanes per *issue* over the whole run (idle excluded).
    pub fn mean_active_lanes(&self) -> f64 {
        let per_bucket = (self.warp_size as usize)
            .div_ceil(OCCUPANCY_BUCKETS - 1)
            .max(1);
        let mut issues = 0u64;
        let mut weighted = 0f64;
        for w in &self.counts {
            for (b, &n) in w.iter().enumerate().skip(1) {
                issues += n;
                // Midpoint of the bucket's lane range.
                let lo = ((b - 1) * per_bucket + 1) as f64;
                let hi = ((b * per_bucket).min(self.warp_size as usize)) as f64;
                weighted += n as f64 * (lo + hi) / 2.0;
            }
        }
        if issues == 0 {
            0.0
        } else {
            weighted / issues as f64
        }
    }
}

/// Aggregate counters for one simulation run.
///
/// During a run each SM accumulates into its own `SimStats` shard (phase A
/// runs SMs on separate threads, so shared counters would race); the GPU
/// merges the shards into its base stats with [`SimStats::merge`]. All
/// counters are sums, so the merge is exact regardless of SM count or
/// thread count — the basis of the determinism regression tests.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SimStats {
    /// Cycles simulated.
    pub cycles: u64,
    /// Committed thread-instructions (the paper's IPC numerator).
    pub thread_instructions: u64,
    /// Warp-instructions issued.
    pub warp_issues: u64,
    /// SM-cycles with no warp ready to issue.
    pub idle_sm_cycles: u64,
    /// Launch-time threads created.
    pub threads_launched: u64,
    /// Dynamically spawned threads.
    pub threads_spawned: u64,
    /// Threads retired (launch + dynamic).
    pub threads_retired: u64,
    /// Lineages completed: a thread retired without spawning a child. For
    /// the ray-tracing kernels this equals *rays completed* under both the
    /// traditional and the μ-kernel formulation.
    pub lineages_completed: u64,
    /// Spawn instructions that had to retry due to back-pressure.
    pub spawn_stall_cycles: u64,
    /// Spawns elided into in-place branches (`SpawnPolicy::OnDivergence`).
    pub spawn_elisions: u64,
    /// Runtime warp traps recorded (illegal accesses, exhausted spawn LUT,
    /// injected faults) — under both fault policies.
    pub faults: u64,
    /// Warps killed under [`crate::FaultPolicy::KillWarp`].
    pub warps_killed: u64,
    /// Live threads discarded with killed warps (not counted as retired).
    pub threads_killed: u64,
    /// Times the watchdog stopped a run with
    /// [`crate::RunOutcome::Deadlock`].
    pub watchdog_deadlocks: u64,
    /// Back-pressure / trap events forced by [`crate::Injector`].
    pub injected_events: u64,
    /// Divergence breakdown over time.
    pub divergence: DivergenceTimeline,
}

impl SimStats {
    /// Creates zeroed statistics.
    pub fn new(divergence_window: u64, warp_size: u32) -> Self {
        SimStats {
            cycles: 0,
            thread_instructions: 0,
            warp_issues: 0,
            idle_sm_cycles: 0,
            threads_launched: 0,
            threads_spawned: 0,
            threads_retired: 0,
            lineages_completed: 0,
            spawn_stall_cycles: 0,
            spawn_elisions: 0,
            faults: 0,
            warps_killed: 0,
            threads_killed: 0,
            watchdog_deadlocks: 0,
            injected_events: 0,
            divergence: DivergenceTimeline::new(divergence_window, warp_size),
        }
    }

    /// Merges a per-SM shard into this aggregate: every counter is summed
    /// and the divergence timelines are added window-by-window. `cycles`
    /// is owned by the GPU (set once per run), so shard cycles (always 0)
    /// add nothing.
    pub fn merge(&mut self, other: &SimStats) {
        self.cycles += other.cycles;
        self.thread_instructions += other.thread_instructions;
        self.warp_issues += other.warp_issues;
        self.idle_sm_cycles += other.idle_sm_cycles;
        self.threads_launched += other.threads_launched;
        self.threads_spawned += other.threads_spawned;
        self.threads_retired += other.threads_retired;
        self.lineages_completed += other.lineages_completed;
        self.spawn_stall_cycles += other.spawn_stall_cycles;
        self.spawn_elisions += other.spawn_elisions;
        self.faults += other.faults;
        self.warps_killed += other.warps_killed;
        self.threads_killed += other.threads_killed;
        self.watchdog_deadlocks += other.watchdog_deadlocks;
        self.injected_events += other.injected_events;
        self.divergence.merge(&other.divergence);
    }

    /// Serializes every counter plus the divergence timeline for a
    /// simulator checkpoint.
    pub(crate) fn encode_state(&self, enc: &mut Encoder) {
        enc.put_u64(self.cycles);
        enc.put_u64(self.thread_instructions);
        enc.put_u64(self.warp_issues);
        enc.put_u64(self.idle_sm_cycles);
        enc.put_u64(self.threads_launched);
        enc.put_u64(self.threads_spawned);
        enc.put_u64(self.threads_retired);
        enc.put_u64(self.lineages_completed);
        enc.put_u64(self.spawn_stall_cycles);
        enc.put_u64(self.spawn_elisions);
        enc.put_u64(self.faults);
        enc.put_u64(self.warps_killed);
        enc.put_u64(self.threads_killed);
        enc.put_u64(self.watchdog_deadlocks);
        enc.put_u64(self.injected_events);
        self.divergence.encode_state(enc);
    }

    /// Restores counters previously written by
    /// [`SimStats::encode_state`] into stats built with the same
    /// divergence geometry.
    pub(crate) fn restore_state(&mut self, dec: &mut Decoder<'_>) -> Result<(), CodecError> {
        self.cycles = dec.take_u64()?;
        self.thread_instructions = dec.take_u64()?;
        self.warp_issues = dec.take_u64()?;
        self.idle_sm_cycles = dec.take_u64()?;
        self.threads_launched = dec.take_u64()?;
        self.threads_spawned = dec.take_u64()?;
        self.threads_retired = dec.take_u64()?;
        self.lineages_completed = dec.take_u64()?;
        self.spawn_stall_cycles = dec.take_u64()?;
        self.spawn_elisions = dec.take_u64()?;
        self.faults = dec.take_u64()?;
        self.warps_killed = dec.take_u64()?;
        self.threads_killed = dec.take_u64()?;
        self.watchdog_deadlocks = dec.take_u64()?;
        self.injected_events = dec.take_u64()?;
        self.divergence.restore_state(dec)
    }

    /// Committed thread-instructions per cycle.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.thread_instructions as f64 / self.cycles as f64
        }
    }

    /// SIMT efficiency: committed thread-instructions over issued warp
    /// slots (`warp_issues × warp_size`).
    pub fn simt_efficiency(&self, warp_size: u32) -> f64 {
        if self.warp_issues == 0 {
            0.0
        } else {
            self.thread_instructions as f64 / (self.warp_issues as f64 * f64::from(warp_size))
        }
    }

    /// Completed lineages (≙ rays) per second at `clock_ghz`.
    pub fn rays_per_second(&self, clock_ghz: f64) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.lineages_completed as f64 / (self.cycles as f64 / (clock_ghz * 1e9))
        }
    }
}

impl fmt::Display for SimStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "cycles:               {}", self.cycles)?;
        writeln!(f, "thread instructions:  {}", self.thread_instructions)?;
        writeln!(f, "IPC:                  {:.1}", self.ipc())?;
        writeln!(f, "warp issues:          {}", self.warp_issues)?;
        writeln!(f, "idle SM-cycles:       {}", self.idle_sm_cycles)?;
        writeln!(f, "threads launched:     {}", self.threads_launched)?;
        writeln!(f, "threads spawned:      {}", self.threads_spawned)?;
        writeln!(f, "threads retired:      {}", self.threads_retired)?;
        writeln!(f, "lineages completed:   {}", self.lineages_completed)?;
        writeln!(f, "spawn stall cycles:   {}", self.spawn_stall_cycles)?;
        writeln!(f, "spawn elisions:       {}", self.spawn_elisions)?;
        writeln!(f, "faults:               {}", self.faults)?;
        writeln!(f, "warps killed:         {}", self.warps_killed)?;
        writeln!(f, "threads killed:       {}", self.threads_killed)?;
        writeln!(f, "watchdog deadlocks:   {}", self.watchdog_deadlocks)?;
        write!(f, "injected events:      {}", self.injected_events)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_cover_paper_categories() {
        let t = DivergenceTimeline::new(100, 32);
        assert_eq!(
            t.labels(),
            vec!["idle", "W1:4", "W5:8", "W9:12", "W13:16", "W17:20", "W21:24", "W25:28", "W29:32"]
        );
    }

    #[test]
    fn bucket_assignment_boundaries() {
        let mut t = DivergenceTimeline::new(100, 32);
        t.record_issue(0, 1);
        t.record_issue(0, 4);
        t.record_issue(0, 5);
        t.record_issue(0, 32);
        t.record_idle(0);
        let w = t.windows()[0];
        assert_eq!(w[0], 1, "idle");
        assert_eq!(w[1], 2, "W1:4");
        assert_eq!(w[2], 1, "W5:8");
        assert_eq!(w[8], 1, "W29:32");
    }

    #[test]
    fn windows_split_by_cycle() {
        let mut t = DivergenceTimeline::new(10, 32);
        t.record_issue(5, 32);
        t.record_issue(15, 32);
        t.record_issue(25, 32);
        assert_eq!(t.windows().len(), 3);
        assert_eq!(t.windows()[1][8], 1);
    }

    #[test]
    fn mean_active_lanes_weighted() {
        let mut t = DivergenceTimeline::new(10, 32);
        t.record_issue(0, 32); // bucket midpoint 30.5
        t.record_issue(0, 2); // bucket midpoint 2.5
        t.record_idle(0); // excluded
        assert!((t.mean_active_lanes() - 16.5).abs() < 1e-9);
    }

    #[test]
    fn ipc_and_efficiency() {
        let mut s = SimStats::new(100, 32);
        s.cycles = 100;
        s.thread_instructions = 1600;
        s.warp_issues = 100;
        assert!((s.ipc() - 16.0).abs() < 1e-9);
        assert!((s.simt_efficiency(32) - 0.5).abs() < 1e-9);
    }

    #[test]
    fn rays_per_second_uses_clock() {
        let mut s = SimStats::new(100, 32);
        s.cycles = 1_000_000;
        s.lineages_completed = 1000;
        // 1000 rays in 1M cycles at 1 GHz = 1M rays/s.
        assert!((s.rays_per_second(1.0) - 1e6).abs() < 1.0);
    }

    #[test]
    fn zero_division_is_safe() {
        let s = SimStats::new(100, 32);
        assert_eq!(s.ipc(), 0.0);
        assert_eq!(s.simt_efficiency(32), 0.0);
        assert_eq!(s.rays_per_second(1.3), 0.0);
        assert_eq!(DivergenceTimeline::new(10, 32).mean_active_lanes(), 0.0);
    }

    #[test]
    fn csv_export_shape() {
        let mut t = DivergenceTimeline::new(10, 32);
        t.record_issue(0, 32);
        t.record_idle(12);
        let csv = t.to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 3, "{csv}");
        assert!(lines[0].starts_with("cycle_end,idle,W1:4"));
        assert!(lines[1].starts_with("10,0,"));
        assert!(lines[1].ends_with(",1"), "{csv}");
        assert!(lines[2].starts_with("20,1,"));
    }

    #[test]
    fn tiny_warp_bucket_scaling() {
        // warp_size 4: per_bucket = 1, buckets W1:1..W4:4 then clamp.
        let mut t = DivergenceTimeline::new(10, 4);
        t.record_issue(0, 4);
        let w = t.windows()[0];
        assert_eq!(w[4], 1);
    }
}
