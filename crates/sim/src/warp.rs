//! Warps and the PDOM reconvergence stack.

use crate::thread::{LaneState, ThreadCtx};
use simt_isa::codec::{CodecError, Decoder, Encoder};
use simt_isa::RECONVERGE_AT_EXIT;

/// One entry of the PDOM reconvergence stack.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StackEntry {
    /// Next PC for the lanes of this entry.
    pub pc: usize,
    /// Lane mask (bit `i` = lane `i` participates).
    pub mask: u64,
    /// PC at which this entry pops (merges into the entry below), or
    /// [`RECONVERGE_AT_EXIT`].
    pub rpc: usize,
}

/// Lifecycle state of a warp.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WarpState {
    /// Has lanes left to run.
    Active,
    /// All lanes retired; resources can be reclaimed.
    Finished,
}

/// A warp: up to `warp_size` threads executing in lockstep under a PDOM
/// reconvergence stack.
#[derive(Debug, Clone)]
pub struct Warp {
    /// Warp id within its SM.
    pub id: usize,
    /// Machine warp width.
    pub warp_size: u32,
    /// Per-lane thread state, struct-of-arrays (unpopulated lanes of
    /// partial warps are absent from the populated mask).
    pub lanes: LaneState,
    stack: Vec<StackEntry>,
    /// Earliest cycle at which this warp may issue again.
    pub ready_at: u64,
    /// Thread block this warp belongs to (launch warps under block
    /// scheduling).
    pub block_id: Option<usize>,
    /// Formation block to release once the warp consumed its metadata
    /// (dynamically created warps only).
    pub formation_block: Option<u32>,
    /// Scratch block held for branch-instead-of-spawn elisions
    /// (`SpawnPolicy::OnDivergence`); released when the warp retires.
    pub elision_block: Option<u32>,
    /// Whether this warp was created by the warp-formation unit.
    pub is_dynamic: bool,
}

impl Warp {
    /// Creates a warp whose populated lanes start at `entry_pc`.
    ///
    /// # Panics
    ///
    /// Panics if more threads than `warp_size` are supplied or no thread is.
    pub fn new(id: usize, warp_size: u32, entry_pc: usize, threads: Vec<ThreadCtx>) -> Self {
        assert!(!threads.is_empty(), "a warp needs at least one thread");
        assert!(
            threads.len() <= warp_size as usize,
            "warp of {} exceeds width {warp_size}",
            threads.len()
        );
        let lanes = LaneState::from_threads(warp_size, threads);
        let mask = lanes.populated_mask();
        Warp {
            id,
            warp_size,
            lanes,
            stack: vec![StackEntry {
                pc: entry_pc,
                mask,
                rpc: RECONVERGE_AT_EXIT,
            }],
            ready_at: 0,
            block_id: None,
            formation_block: None,
            elision_block: None,
            is_dynamic: false,
        }
    }

    /// Number of populated lanes (exited or not).
    pub fn population(&self) -> u32 {
        self.lanes.populated_mask().count_ones()
    }

    /// Pops exhausted/reconverged stack entries; returns the live top.
    fn sync_stack(&mut self) -> Option<&StackEntry> {
        while let Some(top) = self.stack.last() {
            if top.mask == 0 || top.pc == top.rpc {
                self.stack.pop();
            } else {
                break;
            }
        }
        self.stack.last()
    }

    /// The entry that will issue next, after stack maintenance.
    pub fn current(&mut self) -> Option<StackEntry> {
        self.sync_stack().copied()
    }

    /// Whether all lanes have retired.
    pub fn is_finished(&mut self) -> bool {
        self.sync_stack().is_none()
    }

    /// Lifecycle state (convenience over [`Warp::is_finished`]).
    pub fn state(&mut self) -> WarpState {
        if self.is_finished() {
            WarpState::Finished
        } else {
            WarpState::Active
        }
    }

    /// Number of active lanes at the current top of stack.
    pub fn active_lanes(&mut self) -> u32 {
        self.current().map_or(0, |e| e.mask.count_ones())
    }

    /// Advances the top entry to `pc`.
    ///
    /// # Panics
    ///
    /// Panics if the stack is empty (the warp already finished).
    // Documented panic contract: callers operate on unfinished warps.
    #[allow(clippy::expect_used)]
    pub fn set_pc(&mut self, pc: usize) {
        self.sync_stack();
        self.stack.last_mut().expect("set_pc on finished warp").pc = pc;
    }

    /// Applies a divergent branch outcome at the current top entry.
    ///
    /// `taken` and `not_taken` partition the entry's mask; `rpc` is the
    /// branch's immediate post-dominator. Pushes the not-taken side first
    /// so the taken side executes first (order does not affect
    /// correctness).
    ///
    /// # Panics
    ///
    /// Panics if the masks do not partition the current entry's mask.
    // Documented panic contract: callers operate on unfinished warps.
    #[allow(clippy::expect_used)]
    pub fn diverge(
        &mut self,
        taken: u64,
        not_taken: u64,
        target: usize,
        fallthrough: usize,
        rpc: usize,
    ) {
        self.sync_stack();
        let top = *self.stack.last().expect("diverge on finished warp");
        assert_eq!(
            taken | not_taken,
            top.mask,
            "divergence masks must partition"
        );
        assert_eq!(taken & not_taken, 0, "divergence masks must be disjoint");
        if rpc == RECONVERGE_AT_EXIT {
            // No rejoin point before exit: both sides inherit the parent's
            // reconvergence PC and the parent entry is consumed.
            let parent_rpc = top.rpc;
            self.stack.pop();
            self.stack.push(StackEntry {
                pc: fallthrough,
                mask: not_taken,
                rpc: parent_rpc,
            });
            self.stack.push(StackEntry {
                pc: target,
                mask: taken,
                rpc: parent_rpc,
            });
        } else {
            // Parent becomes the reconvergence entry.
            self.stack.last_mut().expect("checked").pc = rpc;
            self.stack.push(StackEntry {
                pc: fallthrough,
                mask: not_taken,
                rpc,
            });
            self.stack.push(StackEntry {
                pc: target,
                mask: taken,
                rpc,
            });
        }
    }

    /// Retires the lanes in `mask`: marks their threads exited and removes
    /// them from every stack entry.
    pub fn exit_lanes(&mut self, mask: u64) {
        self.lanes.exit_lanes(mask);
        for e in &mut self.stack {
            e.mask &= !mask;
        }
    }

    /// Current stack depth (diagnostics).
    pub fn stack_depth(&self) -> usize {
        self.stack.len()
    }

    /// Serializes the warp — lanes, reconvergence stack, timing, and
    /// book-keeping — for a simulator checkpoint.
    pub(crate) fn encode_state(&self, enc: &mut Encoder) {
        enc.put_usize(self.id);
        enc.put_u32(self.warp_size);
        self.lanes.encode_state(enc);
        enc.put_usize(self.stack.len());
        for e in &self.stack {
            enc.put_usize(e.pc);
            enc.put_u64(e.mask);
            enc.put_usize(e.rpc);
        }
        enc.put_u64(self.ready_at);
        enc.put_bool(self.block_id.is_some());
        if let Some(b) = self.block_id {
            enc.put_usize(b);
        }
        enc.put_bool(self.formation_block.is_some());
        if let Some(b) = self.formation_block {
            enc.put_u32(b);
        }
        enc.put_bool(self.elision_block.is_some());
        if let Some(b) = self.elision_block {
            enc.put_u32(b);
        }
        enc.put_bool(self.is_dynamic);
    }

    /// Rebuilds a warp from bytes written by [`Warp::encode_state`].
    pub(crate) fn restore_state(dec: &mut Decoder<'_>) -> Result<Self, CodecError> {
        let id = dec.take_usize()?;
        let warp_size = dec.take_u32()?;
        let lanes = LaneState::restore_state(dec)?;
        let depth = dec.take_len(24)?;
        let stack = (0..depth)
            .map(|_| {
                Ok(StackEntry {
                    pc: dec.take_usize()?,
                    mask: dec.take_u64()?,
                    rpc: dec.take_usize()?,
                })
            })
            .collect::<Result<_, CodecError>>()?;
        let ready_at = dec.take_u64()?;
        let block_id = if dec.take_bool()? {
            Some(dec.take_usize()?)
        } else {
            None
        };
        let formation_block = if dec.take_bool()? {
            Some(dec.take_u32()?)
        } else {
            None
        };
        let elision_block = if dec.take_bool()? {
            Some(dec.take_u32()?)
        } else {
            None
        };
        Ok(Warp {
            id,
            warp_size,
            lanes,
            stack,
            ready_at,
            block_id,
            formation_block,
            elision_block,
            is_dynamic: dec.take_bool()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn warp4(pc: usize) -> Warp {
        let threads = (0..4).map(|i| ThreadCtx::new(i, 8)).collect();
        Warp::new(0, 4, pc, threads)
    }

    #[test]
    fn fresh_warp_has_full_mask() {
        let mut w = warp4(5);
        let e = w.current().unwrap();
        assert_eq!(e.pc, 5);
        assert_eq!(e.mask, 0b1111);
        assert_eq!(e.rpc, RECONVERGE_AT_EXIT);
        assert_eq!(w.active_lanes(), 4);
    }

    #[test]
    fn partial_warp_mask_covers_population() {
        let threads = (0..2).map(|i| ThreadCtx::new(i, 8)).collect();
        let mut w = Warp::new(0, 4, 0, threads);
        assert_eq!(w.current().unwrap().mask, 0b0011);
        assert_eq!(w.population(), 2);
    }

    #[test]
    fn diverge_executes_taken_side_first_then_reconverges() {
        let mut w = warp4(1);
        // Branch at pc 1 to target 10, fallthrough 2, reconverging at 20.
        w.diverge(0b0011, 0b1100, 10, 2, 20);
        let e = w.current().unwrap();
        assert_eq!((e.pc, e.mask), (10, 0b0011));
        // Taken side reaches the reconvergence point.
        w.set_pc(20);
        let e = w.current().unwrap();
        assert_eq!((e.pc, e.mask), (2, 0b1100), "not-taken side runs next");
        w.set_pc(20);
        let e = w.current().unwrap();
        assert_eq!((e.pc, e.mask), (20, 0b1111), "full mask restored at rpc");
    }

    #[test]
    fn diverge_at_exit_sentinel_splits_without_reconvergence_entry() {
        let mut w = warp4(0);
        let depth0 = w.stack_depth();
        w.diverge(0b0001, 0b1110, 7, 1, RECONVERGE_AT_EXIT);
        assert_eq!(w.stack_depth(), depth0 + 1, "parent consumed, two pushed");
        // Exit the taken side; the not-taken side takes over.
        w.exit_lanes(0b0001);
        let e = w.current().unwrap();
        assert_eq!((e.pc, e.mask), (1, 0b1110));
        w.exit_lanes(0b1110);
        assert!(w.is_finished());
    }

    #[test]
    fn exit_removes_lanes_from_nested_entries() {
        let mut w = warp4(0);
        w.diverge(0b0011, 0b1100, 10, 1, 20);
        // Lane 0 exits while inside the taken side.
        w.exit_lanes(0b0001);
        let e = w.current().unwrap();
        assert_eq!(e.mask, 0b0010);
        w.set_pc(20); // taken side done
        w.set_pc(20); // not-taken side done
        let e = w.current().unwrap();
        assert_eq!(e.mask, 0b1110, "reconverged without the exited lane");
    }

    #[test]
    fn all_lanes_exiting_finishes_warp() {
        let mut w = warp4(0);
        assert_eq!(w.state(), WarpState::Active);
        w.exit_lanes(0b1111);
        assert_eq!(w.state(), WarpState::Finished);
        assert_eq!(w.active_lanes(), 0);
    }

    #[test]
    #[should_panic(expected = "partition")]
    fn bad_divergence_masks_panic() {
        let mut w = warp4(0);
        w.diverge(0b0001, 0b0010, 1, 2, 3);
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        /// A random PDOM exercise: repeatedly either diverge the top
        /// entry, advance it to its reconvergence point, or exit random
        /// lanes. Invariants: the active mask never contains exited or
        /// unpopulated lanes, and exiting everything finishes the warp.
        #[derive(Debug, Clone)]
        enum Action {
            Diverge { split: u64, rpc_offset: usize },
            Reconverge,
            Exit { lanes: u64 },
        }

        fn arb_action() -> impl Strategy<Value = Action> {
            prop_oneof![
                (any::<u64>(), 1usize..50)
                    .prop_map(|(split, rpc_offset)| Action::Diverge { split, rpc_offset }),
                Just(Action::Reconverge),
                any::<u64>().prop_map(|lanes| Action::Exit { lanes }),
            ]
        }

        proptest! {
            #[test]
            fn pdom_stack_invariants_hold(actions in proptest::collection::vec(arb_action(), 1..40)) {
                let threads = (0..8).map(|i| ThreadCtx::new(i, 4)).collect();
                let mut w = Warp::new(0, 8, 100, threads);
                let populated = 0xFFu64;
                let mut next_rpc = 1000usize;
                for a in actions {
                    let Some(top) = w.current() else { break };
                    // Invariant: active lanes are populated and alive.
                    let alive: u64 = w.lanes.live_mask();
                    prop_assert_eq!(top.mask & !populated, 0);
                    prop_assert_eq!(top.mask & !alive, 0, "active lane already exited");
                    match a {
                        Action::Diverge { split, rpc_offset } => {
                            let taken = top.mask & split;
                            let not_taken = top.mask & !split;
                            if taken == 0 || not_taken == 0 {
                                continue;
                            }
                            next_rpc += rpc_offset;
                            w.diverge(taken, not_taken, top.pc + 1, top.pc + 2, next_rpc);
                        }
                        Action::Reconverge => {
                            if top.rpc != simt_isa::RECONVERGE_AT_EXIT {
                                w.set_pc(top.rpc);
                            }
                        }
                        Action::Exit { lanes } => {
                            w.exit_lanes(lanes & top.mask);
                        }
                    }
                }
                // Drain: exit everything; the warp must finish.
                w.exit_lanes(populated);
                prop_assert!(w.is_finished());
                prop_assert_eq!(w.active_lanes(), 0);
            }

            #[test]
            fn full_reconvergence_restores_union_mask(split in 1u64..255) {
                let threads = (0..8).map(|i| ThreadCtx::new(i, 4)).collect();
                let mut w = Warp::new(0, 8, 0, threads);
                let taken = split & 0xFF;
                let not_taken = 0xFF & !split;
                prop_assume!(taken != 0 && not_taken != 0);
                w.diverge(taken, not_taken, 10, 1, 20);
                // Run both sides to the reconvergence point.
                w.set_pc(20);
                w.set_pc(20);
                let top = w.current().unwrap();
                prop_assert_eq!(top.mask, 0xFF);
                prop_assert_eq!(top.pc, 20);
            }
        }
    }

    #[test]
    fn nested_divergence_unwinds_in_order() {
        let mut w = warp4(0);
        w.diverge(0b0011, 0b1100, 10, 1, 20); // outer
        w.diverge(0b0001, 0b0010, 12, 11, 15); // inner, within taken side
        let e = w.current().unwrap();
        assert_eq!((e.pc, e.mask), (12, 0b0001));
        w.set_pc(15);
        let e = w.current().unwrap();
        assert_eq!((e.pc, e.mask), (11, 0b0010));
        w.set_pc(15);
        let e = w.current().unwrap();
        assert_eq!((e.pc, e.mask), (15, 0b0011), "inner reconverged");
        w.set_pc(20);
        let e = w.current().unwrap();
        assert_eq!((e.pc, e.mask), (1, 0b1100), "outer not-taken side");
    }
}
