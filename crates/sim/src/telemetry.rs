//! Cycle-level telemetry: deterministic tracing and windowed metrics.
//!
//! The simulator's figures are built from aggregate [`crate::SimStats`],
//! but the paper's argument is about *behaviour over time* — divergence
//! timelines, warp lifecycles, spawn→formation pressure, DRAM module
//! load. This module threads light-weight probes through the machine (SM
//! issue/commit, PDOM push/pop, spawn/formation events, warp birth and
//! retirement, coalescer splits, read-only-cache hits, per-DRAM-module
//! busy time) and exposes the recordings through pluggable
//! [`TraceSink`]s.
//!
//! # Determinism
//!
//! Every probe writes into the *per-SM* [`SmTelemetry`] shard owned by
//! the SM that observed the event, during phase A — the same discipline
//! as the [`crate::SimStats`] shards. [`crate::Gpu::telemetry_report`]
//! merges the shards in SM-id order, so the merged event stream, the
//! windowed counters, and the rendered sink output are bit-identical at
//! every phase-A parallelism level. Events within one SM are recorded in
//! program order; across SMs the merged stream is ordered by SM id (sort
//! by `cycle` downstream if a global timeline is wanted — Perfetto does).
//!
//! # Cost
//!
//! Compiled out entirely without the `telemetry` cargo feature (every
//! probe folds to a constant-false branch). With the feature on (the
//! default) but telemetry disabled at runtime — the default for
//! [`crate::Gpu::builder`] — each probe is a single boolean test.
//! Metrics mode allocates one windowed-counter vector and one divergence
//! timeline per SM; trace mode additionally fills a fixed-capacity ring
//! buffer per SM (oldest events drop first, counted in
//! [`TelemetryReport::dropped`]).

use crate::stats::DivergenceTimeline;
use simt_isa::codec::{CodecError, Decoder, Encoder};
use std::collections::VecDeque;
use std::fmt;
use std::fmt::Write as _;

/// Default per-SM trace ring capacity (events kept per SM).
pub const DEFAULT_TRACE_CAPACITY: usize = 8192;

/// Runtime telemetry configuration, passed to
/// [`crate::gpu::GpuBuilder::telemetry`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TelemetrySpec {
    /// Record windowed metrics and the divergence mirror.
    pub metrics: bool,
    /// Additionally record per-event traces into the per-SM rings
    /// (implies nothing about `metrics`; sinks want both on).
    pub trace: bool,
    /// Metrics window width in cycles. `0` means "use the machine's
    /// `divergence_window`".
    pub metrics_window: u64,
    /// Per-SM trace ring capacity in events.
    pub trace_capacity: usize,
}

impl Default for TelemetrySpec {
    fn default() -> Self {
        TelemetrySpec::off()
    }
}

impl TelemetrySpec {
    /// Telemetry fully disabled (the default): probes cost one branch.
    pub fn off() -> Self {
        TelemetrySpec {
            metrics: false,
            trace: false,
            metrics_window: 0,
            trace_capacity: DEFAULT_TRACE_CAPACITY,
        }
    }

    /// Windowed metrics only — counters and the divergence mirror, no
    /// per-event ring.
    pub fn metrics() -> Self {
        TelemetrySpec {
            metrics: true,
            ..TelemetrySpec::off()
        }
    }

    /// Full tracing: metrics plus per-event rings.
    pub fn trace() -> Self {
        TelemetrySpec {
            metrics: true,
            trace: true,
            ..TelemetrySpec::off()
        }
    }

    /// Sets the metrics window width (`0` = machine divergence window).
    pub fn with_window(mut self, cycles: u64) -> Self {
        self.metrics_window = cycles;
        self
    }

    /// Sets the per-SM trace ring capacity.
    pub fn with_trace_capacity(mut self, events: usize) -> Self {
        self.trace_capacity = events.max(1);
        self
    }
}

/// What happened, attached to a [`TraceEvent`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum TraceEventKind {
    /// A warp-instruction committed with `active` live lanes.
    Issue {
        /// Warp id within the SM.
        warp: usize,
        /// Program counter of the committed instruction.
        pc: usize,
        /// Active lanes at commit.
        active: u32,
    },
    /// The warp's PDOM reconvergence stack grew to `depth`.
    PdomPush {
        /// Warp id within the SM.
        warp: usize,
        /// Stack depth after the push.
        depth: u32,
    },
    /// The warp's PDOM reconvergence stack shrank to `depth`.
    PdomPop {
        /// Warp id within the SM.
        warp: usize,
        /// Stack depth after the pop.
        depth: u32,
    },
    /// A warp entered the SM (launch admission or formation output).
    WarpBirth {
        /// Warp id within the SM.
        warp: usize,
        /// True for formation-unit (dynamic μ-kernel) warps.
        dynamic: bool,
        /// Threads populating the new warp.
        population: u32,
    },
    /// A warp retired and released its resources.
    WarpRetire {
        /// Warp id within the SM.
        warp: usize,
    },
    /// A `spawn` instruction deposited `threads` into the formation unit.
    Spawn {
        /// Warp id within the SM.
        warp: usize,
        /// μ-kernel entry PC spawned to.
        target_pc: usize,
        /// Active lanes that spawned.
        threads: u32,
    },
    /// A `spawn` retried because the formation unit pushed back
    /// (partial-warp pool or new-warp FIFO full).
    SpawnStall {
        /// Warp id within the SM.
        warp: usize,
    },
    /// A `spawn` was elided into an in-place branch
    /// (`SpawnPolicy::OnDivergence`, fully converged warp).
    SpawnElided {
        /// Warp id within the SM.
        warp: usize,
    },
    /// An off-chip warp access was split by the coalescer into
    /// `segments` DRAM segment requests.
    CoalescerSplit {
        /// Warp id within the SM.
        warp: usize,
        /// Lanes participating in the access.
        lanes: u32,
        /// Coalesced segment requests issued.
        segments: u32,
    },
    /// A read-only (texture/kd-tree cache) access: `lanes` lanes probed,
    /// `miss_lines` cache lines missed and went to DRAM.
    TexAccess {
        /// Warp id within the SM.
        warp: usize,
        /// Lanes participating in the access.
        lanes: u32,
        /// Cache lines that missed.
        miss_lines: u32,
    },
    /// An L1 data-cache access: `lines` lines probed, `misses` missed
    /// (of which `merges` rode an outstanding MSHR fill).
    L1Access {
        /// Warp id within the SM.
        warp: usize,
        /// L1 lines probed.
        lines: u32,
        /// Lines that missed.
        misses: u32,
        /// Misses merged into an outstanding MSHR entry.
        merges: u32,
    },
}

/// One timestamped telemetry event, recorded by the SM that observed it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// Simulated cycle of the event.
    pub cycle: u64,
    /// SM that recorded the event.
    pub sm: usize,
    /// What happened.
    pub kind: TraceEventKind,
}

impl TraceEventKind {
    /// Short stable name for exporters.
    pub fn name(&self) -> &'static str {
        match self {
            TraceEventKind::Issue { .. } => "issue",
            TraceEventKind::PdomPush { .. } => "pdom_push",
            TraceEventKind::PdomPop { .. } => "pdom_pop",
            TraceEventKind::WarpBirth { .. } => "warp_birth",
            TraceEventKind::WarpRetire { .. } => "warp_retire",
            TraceEventKind::Spawn { .. } => "spawn",
            TraceEventKind::SpawnStall { .. } => "spawn_stall",
            TraceEventKind::SpawnElided { .. } => "spawn_elided",
            TraceEventKind::CoalescerSplit { .. } => "coalescer_split",
            TraceEventKind::TexAccess { .. } => "tex_access",
            TraceEventKind::L1Access { .. } => "l1_access",
        }
    }
}

/// Per-window metric counters (one row of the metrics CSV).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct WindowCounters {
    /// Warp-instructions committed.
    pub issues: u64,
    /// Thread-instructions committed.
    pub thread_instructions: u64,
    /// Warps admitted (launch + formation).
    pub warps_born: u64,
    /// Warps retired.
    pub warps_retired: u64,
    /// `spawn` instructions that deposited threads.
    pub spawn_instructions: u64,
    /// Threads deposited into the formation unit.
    pub threads_spawned: u64,
    /// `spawn` retries under formation back-pressure.
    pub spawn_stalls: u64,
    /// Spawns elided into in-place branches.
    pub spawn_elisions: u64,
    /// PDOM reconvergence-stack pushes observed at commit.
    pub pdom_pushes: u64,
    /// PDOM reconvergence-stack pops observed at commit.
    pub pdom_pops: u64,
    /// Off-chip warp accesses issued to the fabric.
    pub offchip_requests: u64,
    /// Coalesced DRAM segment requests those accesses split into.
    pub offchip_segments: u64,
    /// Read-only-cache (texture) warp accesses.
    pub tex_accesses: u64,
    /// Read-only-cache lines missed.
    pub tex_miss_lines: u64,
    /// L1 data-cache warp accesses (zero on the flat machine).
    pub l1_accesses: u64,
    /// L1 line-probes that hit.
    pub l1_hits: u64,
    /// L1 line-probes that missed (merges included).
    pub l1_misses: u64,
    /// L1 misses merged into an outstanding MSHR fill.
    pub l1_mshr_merges: u64,
}

impl WindowCounters {
    /// CSV column names, matching [`WindowCounters::csv_row`].
    pub fn csv_header() -> &'static str {
        "issues,thread_instructions,warps_born,warps_retired,spawn_instructions,\
         threads_spawned,spawn_stalls,spawn_elisions,pdom_pushes,pdom_pops,\
         offchip_requests,offchip_segments,tex_accesses,tex_miss_lines,\
         l1_accesses,l1_hits,l1_misses,l1_mshr_merges"
    }

    /// One CSV row (no trailing newline).
    pub fn csv_row(&self) -> String {
        format!(
            "{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{}",
            self.issues,
            self.thread_instructions,
            self.warps_born,
            self.warps_retired,
            self.spawn_instructions,
            self.threads_spawned,
            self.spawn_stalls,
            self.spawn_elisions,
            self.pdom_pushes,
            self.pdom_pops,
            self.offchip_requests,
            self.offchip_segments,
            self.tex_accesses,
            self.tex_miss_lines,
            self.l1_accesses,
            self.l1_hits,
            self.l1_misses,
            self.l1_mshr_merges
        )
    }

    fn add(&mut self, other: &WindowCounters) {
        self.issues += other.issues;
        self.thread_instructions += other.thread_instructions;
        self.warps_born += other.warps_born;
        self.warps_retired += other.warps_retired;
        self.spawn_instructions += other.spawn_instructions;
        self.threads_spawned += other.threads_spawned;
        self.spawn_stalls += other.spawn_stalls;
        self.spawn_elisions += other.spawn_elisions;
        self.pdom_pushes += other.pdom_pushes;
        self.pdom_pops += other.pdom_pops;
        self.offchip_requests += other.offchip_requests;
        self.offchip_segments += other.offchip_segments;
        self.tex_accesses += other.tex_accesses;
        self.tex_miss_lines += other.tex_miss_lines;
        self.l1_accesses += other.l1_accesses;
        self.l1_hits += other.l1_hits;
        self.l1_misses += other.l1_misses;
        self.l1_mshr_merges += other.l1_mshr_merges;
    }

    fn encode(&self, enc: &mut Encoder) {
        enc.put_u64(self.issues);
        enc.put_u64(self.thread_instructions);
        enc.put_u64(self.warps_born);
        enc.put_u64(self.warps_retired);
        enc.put_u64(self.spawn_instructions);
        enc.put_u64(self.threads_spawned);
        enc.put_u64(self.spawn_stalls);
        enc.put_u64(self.spawn_elisions);
        enc.put_u64(self.pdom_pushes);
        enc.put_u64(self.pdom_pops);
        enc.put_u64(self.offchip_requests);
        enc.put_u64(self.offchip_segments);
        enc.put_u64(self.tex_accesses);
        enc.put_u64(self.tex_miss_lines);
        enc.put_u64(self.l1_accesses);
        enc.put_u64(self.l1_hits);
        enc.put_u64(self.l1_misses);
        enc.put_u64(self.l1_mshr_merges);
    }

    fn decode(dec: &mut Decoder<'_>) -> Result<WindowCounters, CodecError> {
        Ok(WindowCounters {
            issues: dec.take_u64()?,
            thread_instructions: dec.take_u64()?,
            warps_born: dec.take_u64()?,
            warps_retired: dec.take_u64()?,
            spawn_instructions: dec.take_u64()?,
            threads_spawned: dec.take_u64()?,
            spawn_stalls: dec.take_u64()?,
            spawn_elisions: dec.take_u64()?,
            pdom_pushes: dec.take_u64()?,
            pdom_pops: dec.take_u64()?,
            offchip_requests: dec.take_u64()?,
            offchip_segments: dec.take_u64()?,
            tex_accesses: dec.take_u64()?,
            tex_miss_lines: dec.take_u64()?,
            l1_accesses: dec.take_u64()?,
            l1_hits: dec.take_u64()?,
            l1_misses: dec.take_u64()?,
            l1_mshr_merges: dec.take_u64()?,
        })
    }
}

/// Per-SM telemetry shard. Lives inside each [`crate::Sm`] next to its
/// statistics shard and is written only by that SM during phase A, so
/// recording is race-free and deterministic.
#[derive(Debug, Clone)]
pub(crate) struct SmTelemetry {
    sm: usize,
    metrics: bool,
    trace: bool,
    window: u64,
    trace_capacity: usize,
    /// Divergence mirror, always at the machine's `divergence_window` so
    /// the CSV sink reproduces `SimStats::divergence` exactly.
    divergence: DivergenceTimeline,
    windows: Vec<WindowCounters>,
    events: VecDeque<TraceEvent>,
    dropped: u64,
    /// Last PDOM stack depth seen per warp id, to turn depth deltas into
    /// push/pop events at commit time. Indexed by the SM's monotonic,
    /// never-reused warp id; 0 means "no entry" (a live warp's stack is
    /// never empty at commit, and a warp that drains its stack on its
    /// final commit never issues again), which keeps the per-commit hot
    /// path a flat array access instead of a map lookup.
    depths: Vec<u32>,
    /// Cached `(index, first cycle)` of the window most recently written —
    /// pure cache, not serialized (see [`DivergenceTimeline`]'s twin).
    cur_idx: usize,
    cur_start: u64,
}

impl SmTelemetry {
    pub(crate) fn new(
        sm: usize,
        spec: &TelemetrySpec,
        divergence_window: u64,
        warp_size: u32,
    ) -> Self {
        SmTelemetry {
            sm,
            metrics: spec.metrics,
            trace: spec.metrics && spec.trace,
            window: if spec.metrics_window == 0 {
                divergence_window
            } else {
                spec.metrics_window
            },
            trace_capacity: spec.trace_capacity.max(1),
            divergence: DivergenceTimeline::new(divergence_window, warp_size),
            windows: Vec::new(),
            events: VecDeque::new(),
            dropped: 0,
            depths: Vec::new(),
            cur_idx: 0,
            cur_start: 0,
        }
    }

    /// Whether any probe records anything. Folds to `false` when the
    /// `telemetry` cargo feature is compiled out.
    #[inline]
    pub(crate) fn is_on(&self) -> bool {
        cfg!(feature = "telemetry") && self.metrics
    }

    #[inline]
    fn trace_on(&self) -> bool {
        cfg!(feature = "telemetry") && self.trace
    }

    #[inline]
    fn slot_idx(&mut self, cycle: u64) -> usize {
        if cycle.wrapping_sub(self.cur_start) < self.window && self.cur_idx < self.windows.len() {
            return self.cur_idx;
        }
        let idx = (cycle / self.window) as usize;
        if self.windows.len() <= idx {
            self.windows.resize(idx + 1, WindowCounters::default());
        }
        self.cur_idx = idx;
        self.cur_start = idx as u64 * self.window;
        idx
    }

    fn slot(&mut self, cycle: u64) -> &mut WindowCounters {
        let idx = self.slot_idx(cycle);
        &mut self.windows[idx]
    }

    /// Reads and replaces the last-seen stack depth for `warp`,
    /// growing the flat table on first sight of an id.
    #[inline]
    fn swap_depth(&mut self, warp: usize, depth: u32) -> u32 {
        if self.depths.len() <= warp {
            self.depths.resize(warp + 1, 0);
        }
        std::mem::replace(&mut self.depths[warp], depth)
    }

    fn push_event(&mut self, cycle: u64, kind: TraceEventKind) {
        if !self.trace_on() {
            return;
        }
        if self.events.len() >= self.trace_capacity {
            self.events.pop_front();
            self.dropped += 1;
        }
        self.events.push_back(TraceEvent {
            cycle,
            sm: self.sm,
            kind,
        });
    }

    /// A warp-instruction committed. Also derives PDOM push/pop events
    /// from the warp's reconvergence-stack depth delta since its last
    /// commit.
    pub(crate) fn on_issue(&mut self, now: u64, warp: usize, pc: usize, active: u32, depth: u32) {
        if !self.is_on() {
            return;
        }
        self.divergence.record_issue(now, active);
        let idx = self.slot_idx(now);
        let w = &mut self.windows[idx];
        w.issues += 1;
        w.thread_instructions += u64::from(active);
        let prev = match self.swap_depth(warp, depth) {
            0 => depth,
            d => d,
        };
        if depth > prev {
            self.windows[idx].pdom_pushes += u64::from(depth - prev);
            self.push_event(now, TraceEventKind::PdomPush { warp, depth });
        } else if depth < prev {
            self.windows[idx].pdom_pops += u64::from(prev - depth);
            self.push_event(now, TraceEventKind::PdomPop { warp, depth });
        }
        self.push_event(now, TraceEventKind::Issue { warp, pc, active });
    }

    /// An SM-cycle with no warp ready.
    pub(crate) fn on_idle(&mut self, now: u64) {
        if !self.is_on() {
            return;
        }
        self.divergence.record_idle(now);
    }

    /// `count` consecutive idle SM-cycles starting at `from` — byte-identical
    /// to `count` individual [`SmTelemetry::on_idle`] calls.
    pub(crate) fn on_idle_span(&mut self, from: u64, count: u64) {
        if !self.is_on() {
            return;
        }
        self.divergence.record_idle_span(from, count);
    }

    /// A warp was admitted (launch or formation output).
    pub(crate) fn on_warp_birth(&mut self, now: u64, warp: usize, dynamic: bool, population: u32) {
        if !self.is_on() {
            return;
        }
        self.slot(now).warps_born += 1;
        self.swap_depth(warp, 1);
        self.push_event(
            now,
            TraceEventKind::WarpBirth {
                warp,
                dynamic,
                population,
            },
        );
    }

    /// A warp retired.
    pub(crate) fn on_warp_retire(&mut self, now: u64, warp: usize) {
        if !self.is_on() {
            return;
        }
        self.slot(now).warps_retired += 1;
        if let Some(d) = self.depths.get_mut(warp) {
            *d = 0;
        }
        self.push_event(now, TraceEventKind::WarpRetire { warp });
    }

    /// A `spawn` deposited `threads` into the formation unit.
    pub(crate) fn on_spawn(&mut self, now: u64, warp: usize, target_pc: usize, threads: u32) {
        if !self.is_on() {
            return;
        }
        let w = self.slot(now);
        w.spawn_instructions += 1;
        w.threads_spawned += u64::from(threads);
        self.push_event(
            now,
            TraceEventKind::Spawn {
                warp,
                target_pc,
                threads,
            },
        );
    }

    /// A `spawn` retried under formation back-pressure.
    pub(crate) fn on_spawn_stall(&mut self, now: u64, warp: usize) {
        if !self.is_on() {
            return;
        }
        self.slot(now).spawn_stalls += 1;
        self.push_event(now, TraceEventKind::SpawnStall { warp });
    }

    /// A `spawn` was elided into an in-place branch.
    pub(crate) fn on_spawn_elided(&mut self, now: u64, warp: usize) {
        if !self.is_on() {
            return;
        }
        self.slot(now).spawn_elisions += 1;
        self.push_event(now, TraceEventKind::SpawnElided { warp });
    }

    /// An off-chip warp access issued `segments` coalesced requests.
    pub(crate) fn on_offchip(&mut self, now: u64, warp: usize, lanes: u32, segments: u32) {
        if !self.is_on() {
            return;
        }
        let w = self.slot(now);
        w.offchip_requests += 1;
        w.offchip_segments += u64::from(segments);
        if segments > 1 {
            self.push_event(
                now,
                TraceEventKind::CoalescerSplit {
                    warp,
                    lanes,
                    segments,
                },
            );
        }
    }

    /// A read-only-cache access probed `lanes` lanes, missing
    /// `miss_lines` lines.
    pub(crate) fn on_tex(&mut self, now: u64, warp: usize, lanes: u32, miss_lines: u32) {
        if !self.is_on() {
            return;
        }
        let w = self.slot(now);
        w.tex_accesses += 1;
        w.tex_miss_lines += u64::from(miss_lines);
        self.push_event(
            now,
            TraceEventKind::TexAccess {
                warp,
                lanes,
                miss_lines,
            },
        );
    }

    /// An L1 data-cache probe (see [`simt_mem::L1Probe`]).
    pub(crate) fn on_l1(&mut self, now: u64, warp: usize, probe: &simt_mem::L1Probe) {
        if !self.is_on() {
            return;
        }
        let w = self.slot(now);
        w.l1_accesses += 1;
        w.l1_hits += u64::from(probe.hits);
        w.l1_misses += u64::from(probe.misses);
        w.l1_mshr_merges += u64::from(probe.merges);
        self.push_event(
            now,
            TraceEventKind::L1Access {
                warp,
                lines: probe.lines,
                misses: probe.misses,
                merges: probe.merges,
            },
        );
    }

    pub(crate) fn metrics_window(&self) -> u64 {
        self.window
    }

    /// Merges this shard into an accumulating report (SM-id order is the
    /// caller's responsibility).
    pub(crate) fn merge_into(&self, report: &mut TelemetryReport) {
        report.divergence.merge(&self.divergence);
        if report.windows.len() < self.windows.len() {
            report
                .windows
                .resize(self.windows.len(), WindowCounters::default());
        }
        for (dst, src) in report.windows.iter_mut().zip(&self.windows) {
            dst.add(src);
        }
        report.events.extend(self.events.iter().copied());
        report.dropped += self.dropped;
    }

    /// Serializes enablement, windowed counters, the divergence mirror,
    /// and the per-warp depth map for a machine checkpoint. The trace
    /// ring is deliberately *not* captured: metrics survive a
    /// checkpoint/resume bit-identically, traces restart empty.
    pub(crate) fn encode_state(&self, enc: &mut Encoder) {
        enc.put_bool(self.metrics);
        enc.put_bool(self.trace);
        enc.put_u64(self.window);
        enc.put_usize(self.trace_capacity);
        self.divergence.encode_state(enc);
        enc.put_usize(self.windows.len());
        for w in &self.windows {
            w.encode(enc);
        }
        // Live entries only, in warp-id order: the same bytes the old
        // ordered-map representation produced.
        enc.put_usize(self.depths.iter().filter(|&&d| d != 0).count());
        for (warp, &depth) in self.depths.iter().enumerate() {
            if depth != 0 {
                enc.put_usize(warp);
                enc.put_u32(depth);
            }
        }
    }

    /// Restores state written by [`SmTelemetry::encode_state`].
    pub(crate) fn restore_state(&mut self, dec: &mut Decoder<'_>) -> Result<(), CodecError> {
        self.metrics = dec.take_bool()?;
        self.trace = dec.take_bool()?;
        self.window = dec.take_u64()?;
        self.trace_capacity = dec.take_usize()?.max(1);
        self.divergence.restore_state(dec)?;
        let n = dec.take_len(14 * 8)?;
        self.windows = (0..n)
            .map(|_| WindowCounters::decode(dec))
            .collect::<Result<_, _>>()?;
        let n = dec.take_len(9)?;
        self.depths.clear();
        for _ in 0..n {
            let warp = dec.take_usize()?;
            let depth = dec.take_u32()?;
            if self.depths.len() <= warp {
                self.depths.resize(warp + 1, 0);
            }
            self.depths[warp] = depth;
        }
        self.events.clear();
        self.dropped = 0;
        Ok(())
    }
}

/// Merged whole-machine telemetry, produced by
/// [`crate::Gpu::telemetry_report`]. Shards merge in SM-id order, so the
/// report is bit-identical at every phase-A parallelism level.
#[derive(Debug, Clone)]
pub struct TelemetryReport {
    /// Machine warp size (for labelling).
    pub warp_size: u32,
    /// Metrics window width in cycles.
    pub metrics_window: u64,
    /// Divergence mirror — identical to `SimStats::divergence` for the
    /// same run, rebuilt from the telemetry probes.
    pub divergence: DivergenceTimeline,
    /// Windowed counters indexed by `cycle / metrics_window`.
    pub windows: Vec<WindowCounters>,
    /// Merged event stream: SM-id-major, per-SM program order.
    pub events: Vec<TraceEvent>,
    /// Events dropped by full per-SM rings.
    pub dropped: u64,
    /// Per-DRAM-module busy time in (fractional) DRAM-clock cycles.
    pub module_busy: Vec<f64>,
    /// Aggregate `(hits, misses)` of the shared L2 slices; `None` on the
    /// flat (uncached) machine.
    pub l2: Option<(u64, u64)>,
    /// Per-partition interconnect-bank busy cycles (empty on the flat
    /// machine).
    pub icnt_busy: Vec<u64>,
    /// Interconnect grants that queued behind another SM's flit.
    pub icnt_conflicts: u64,
}

impl TelemetryReport {
    /// Total committed warp-instructions across all windows.
    pub fn total_issues(&self) -> u64 {
        self.windows.iter().map(|w| w.issues).sum()
    }
}

/// Renders a [`TelemetryReport`] into one output document.
pub trait TraceSink {
    /// Renders the report (the caller decides where the bytes go).
    fn render(&self, report: &TelemetryReport) -> String;
}

/// Chrome trace-event JSON (the `chrome://tracing` / Perfetto format):
/// instant events per trace ring entry (`pid` = SM, `tid` = warp) and
/// counter events per metrics window.
pub struct ChromeTraceSink;

impl ChromeTraceSink {
    fn event_args(kind: &TraceEventKind, out: &mut String) {
        match kind {
            TraceEventKind::Issue { pc, active, .. } => {
                let _ = write!(out, "{{\"pc\":{pc},\"active\":{active}}}");
            }
            TraceEventKind::PdomPush { depth, .. } | TraceEventKind::PdomPop { depth, .. } => {
                let _ = write!(out, "{{\"depth\":{depth}}}");
            }
            TraceEventKind::WarpBirth {
                dynamic,
                population,
                ..
            } => {
                let _ = write!(out, "{{\"dynamic\":{dynamic},\"population\":{population}}}");
            }
            TraceEventKind::WarpRetire { .. }
            | TraceEventKind::SpawnStall { .. }
            | TraceEventKind::SpawnElided { .. } => out.push_str("{}"),
            TraceEventKind::Spawn {
                target_pc, threads, ..
            } => {
                let _ = write!(out, "{{\"target_pc\":{target_pc},\"threads\":{threads}}}");
            }
            TraceEventKind::CoalescerSplit {
                lanes, segments, ..
            } => {
                let _ = write!(out, "{{\"lanes\":{lanes},\"segments\":{segments}}}");
            }
            TraceEventKind::TexAccess {
                lanes, miss_lines, ..
            } => {
                let _ = write!(out, "{{\"lanes\":{lanes},\"miss_lines\":{miss_lines}}}");
            }
            TraceEventKind::L1Access {
                lines,
                misses,
                merges,
                ..
            } => {
                let _ = write!(
                    out,
                    "{{\"lines\":{lines},\"misses\":{misses},\"merges\":{merges}}}"
                );
            }
        }
    }

    fn warp_of(kind: &TraceEventKind) -> usize {
        match kind {
            TraceEventKind::Issue { warp, .. }
            | TraceEventKind::PdomPush { warp, .. }
            | TraceEventKind::PdomPop { warp, .. }
            | TraceEventKind::WarpBirth { warp, .. }
            | TraceEventKind::WarpRetire { warp }
            | TraceEventKind::Spawn { warp, .. }
            | TraceEventKind::SpawnStall { warp }
            | TraceEventKind::SpawnElided { warp }
            | TraceEventKind::CoalescerSplit { warp, .. }
            | TraceEventKind::TexAccess { warp, .. }
            | TraceEventKind::L1Access { warp, .. } => *warp,
        }
    }
}

impl TraceSink for ChromeTraceSink {
    fn render(&self, report: &TelemetryReport) -> String {
        let mut out = String::from("{\"traceEvents\":[");
        let mut first = true;
        for e in &report.events {
            if !first {
                out.push(',');
            }
            first = false;
            let _ = write!(
                out,
                "{{\"name\":\"{}\",\"ph\":\"i\",\"s\":\"t\",\"ts\":{},\"pid\":{},\"tid\":{},\"args\":",
                e.kind.name(),
                e.cycle,
                e.sm,
                Self::warp_of(&e.kind)
            );
            Self::event_args(&e.kind, &mut out);
            out.push('}');
        }
        for (i, w) in report.windows.iter().enumerate() {
            if !first {
                out.push(',');
            }
            first = false;
            let ts = (i as u64 + 1) * report.metrics_window;
            let _ = write!(
                out,
                "{{\"name\":\"metrics\",\"ph\":\"C\",\"ts\":{ts},\"pid\":0,\"tid\":0,\"args\":\
                 {{\"issues\":{},\"thread_instructions\":{},\"warps_born\":{},\"warps_retired\":{},\
                 \"threads_spawned\":{},\"spawn_stalls\":{},\"offchip_segments\":{}}}}}",
                w.issues,
                w.thread_instructions,
                w.warps_born,
                w.warps_retired,
                w.threads_spawned,
                w.spawn_stalls,
                w.offchip_segments
            );
        }
        let _ = write!(
            out,
            "],\"displayTimeUnit\":\"ns\",\"otherData\":{{\"dropped_events\":{}",
            report.dropped
        );
        if let Some((hits, misses)) = report.l2 {
            let _ = write!(
                out,
                ",\"l2_hits\":{hits},\"l2_misses\":{misses},\"icnt_conflicts\":{}",
                report.icnt_conflicts
            );
        }
        out.push_str("}}");
        out
    }
}

/// Windowed-metrics CSV: a counters section, the divergence timeline
/// (byte-identical to `SimStats::divergence.to_csv()`), and per-module
/// DRAM busy time. Sections are separated by `# `-prefixed headers.
pub struct CsvMetricsSink;

impl TraceSink for CsvMetricsSink {
    fn render(&self, report: &TelemetryReport) -> String {
        let mut out = format!(
            "# windowed counters (window = {} cycles)\ncycle_end,{}\n",
            report.metrics_window,
            WindowCounters::csv_header()
        );
        for (i, w) in report.windows.iter().enumerate() {
            let _ = writeln!(
                out,
                "{},{}",
                (i as u64 + 1) * report.metrics_window,
                w.csv_row()
            );
        }
        out.push_str("# divergence timeline\n");
        out.push_str(&report.divergence.to_csv());
        out.push_str("# dram module busy (fractional dram cycles)\nmodule,busy\n");
        for (m, busy) in report.module_busy.iter().enumerate() {
            let _ = writeln!(out, "{m},{busy:.3}");
        }
        // Hierarchy sections only exist on a cached machine, so flat-run
        // CSVs stay byte-identical to the pre-hierarchy format.
        if let Some((hits, misses)) = report.l2 {
            out.push_str("# l2\nl2_hits,l2_misses,icnt_conflicts\n");
            let _ = writeln!(out, "{hits},{misses},{}", report.icnt_conflicts);
            out.push_str("# interconnect bank busy (cycles)\nbank,busy\n");
            for (b, busy) in report.icnt_busy.iter().enumerate() {
                let _ = writeln!(out, "{b},{busy}");
            }
        }
        out
    }
}

impl CsvMetricsSink {
    /// Extracts the divergence-timeline section of a rendered metrics
    /// CSV (the bytes between the divergence header and the next
    /// section), for comparison against `SimStats::divergence.to_csv()`.
    pub fn divergence_section(rendered: &str) -> Option<&str> {
        let start = rendered.find("# divergence timeline\n")? + "# divergence timeline\n".len();
        let rest = &rendered[start..];
        let end = rest.find("# ").unwrap_or(rest.len());
        Some(&rest[..end])
    }
}

/// One human-readable status line, for periodic snapshots of long
/// supervised runs.
pub struct SnapshotSink;

impl TraceSink for SnapshotSink {
    fn render(&self, report: &TelemetryReport) -> String {
        ProgressPulse::collect(0, report).vitals()
    }
}

/// A point-in-time machine-vitals snapshot of a running simulation: the
/// cycle counter plus the `SnapshotSink` aggregates. The supervisor
/// publishes one at every healthy slice boundary; campaign workers relay
/// the latest pulse in their heartbeat files so the coordinator — and
/// the `repro serve` status endpoint above it — can report live per-job
/// progress without touching the simulation.
#[derive(Debug, Clone, PartialEq)]
pub struct ProgressPulse {
    /// Simulated cycle the pulse was taken at.
    pub cycle: u64,
    /// Total instructions issued so far.
    pub issues: u64,
    /// Mean active lanes per issue (SIMT efficiency proxy).
    pub mean_active_lanes: f64,
    /// Warps born across all windows.
    pub warps_born: u64,
    /// Warps retired across all windows.
    pub warps_retired: u64,
    /// μ-kernel threads spawned.
    pub threads_spawned: u64,
    /// Spawn-unit stall events.
    pub spawn_stalls: u64,
    /// Telemetry events dropped under backpressure.
    pub dropped_events: u64,
    /// False when the run had telemetry off and only the cycle counter
    /// is meaningful.
    pub telemetry: bool,
}

impl ProgressPulse {
    /// Builds a pulse from a full telemetry report at `cycle`.
    pub fn collect(cycle: u64, report: &TelemetryReport) -> Self {
        let (born, retired, spawned, stalls) =
            report
                .windows
                .iter()
                .fold((0u64, 0u64, 0u64, 0u64), |(b, r, s, st), w| {
                    (
                        b + w.warps_born,
                        r + w.warps_retired,
                        s + w.threads_spawned,
                        st + w.spawn_stalls,
                    )
                });
        ProgressPulse {
            cycle,
            issues: report.total_issues(),
            mean_active_lanes: report.divergence.mean_active_lanes(),
            warps_born: born,
            warps_retired: retired,
            threads_spawned: spawned,
            spawn_stalls: stalls,
            dropped_events: report.dropped,
            telemetry: true,
        }
    }

    /// A cycle-only pulse for runs with telemetry disabled.
    pub fn at_cycle(cycle: u64) -> Self {
        ProgressPulse {
            cycle,
            issues: 0,
            mean_active_lanes: 0.0,
            warps_born: 0,
            warps_retired: 0,
            threads_spawned: 0,
            spawn_stalls: 0,
            dropped_events: 0,
            telemetry: false,
        }
    }

    /// The vitals tail — exactly the bytes `SnapshotSink` has always
    /// rendered (downstream log parsers depend on this format).
    pub fn vitals(&self) -> String {
        format!(
            "issues {}, mean active lanes {:.1}, warps born {} / retired {}, \
             threads spawned {}, spawn stalls {}, dropped events {}",
            self.issues,
            self.mean_active_lanes,
            self.warps_born,
            self.warps_retired,
            self.threads_spawned,
            self.spawn_stalls,
            self.dropped_events
        )
    }
}

impl fmt::Display for ProgressPulse {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.telemetry {
            write!(f, "cycle {}: {}", self.cycle, self.vitals())
        } else {
            write!(f, "cycle {}", self.cycle)
        }
    }
}

// The recording tests need the probes compiled in; `disabled_probes_
// record_nothing` covers the runtime-off path, and a `--no-default-
// features` build checks the compiled-off path by construction.
#[cfg(all(test, feature = "telemetry"))]
mod tests {
    use super::*;

    fn shard() -> SmTelemetry {
        SmTelemetry::new(0, &TelemetrySpec::trace(), 10, 32)
    }

    fn report_of(shards: &[SmTelemetry]) -> TelemetryReport {
        let mut report = TelemetryReport {
            warp_size: 32,
            metrics_window: shards[0].metrics_window(),
            divergence: DivergenceTimeline::new(10, 32),
            windows: Vec::new(),
            events: Vec::new(),
            dropped: 0,
            module_busy: Vec::new(),
            l2: None,
            icnt_busy: Vec::new(),
            icnt_conflicts: 0,
        };
        for s in shards {
            s.merge_into(&mut report);
        }
        report
    }

    #[test]
    fn disabled_probes_record_nothing() {
        let mut t = SmTelemetry::new(0, &TelemetrySpec::off(), 10, 32);
        t.on_issue(5, 1, 0, 32, 1);
        t.on_idle(6);
        t.on_warp_birth(7, 1, false, 32);
        assert!(t.windows.is_empty());
        assert!(t.events.is_empty());
        assert!(t.divergence.windows().is_empty());
    }

    #[test]
    fn metrics_mode_keeps_counters_but_no_events() {
        let mut t = SmTelemetry::new(0, &TelemetrySpec::metrics(), 10, 32);
        t.on_issue(5, 1, 0, 32, 1);
        assert_eq!(t.windows[0].issues, 1);
        assert_eq!(t.windows[0].thread_instructions, 32);
        assert!(t.events.is_empty());
    }

    #[test]
    fn depth_deltas_become_pushes_and_pops() {
        let mut t = shard();
        t.on_issue(0, 1, 10, 32, 1);
        t.on_issue(1, 1, 11, 16, 2); // push
        t.on_issue(2, 1, 12, 16, 2); // steady
        t.on_issue(3, 1, 13, 32, 1); // pop
        assert_eq!(t.windows[0].pdom_pushes, 1);
        assert_eq!(t.windows[0].pdom_pops, 1);
        let kinds: Vec<&'static str> = t.events.iter().map(|e| e.kind.name()).collect();
        assert!(kinds.contains(&"pdom_push"));
        assert!(kinds.contains(&"pdom_pop"));
    }

    #[test]
    fn ring_drops_oldest_and_counts() {
        let spec = TelemetrySpec::trace().with_trace_capacity(4);
        let mut t = SmTelemetry::new(0, &spec, 10, 32);
        for c in 0..10 {
            t.on_issue(c, 1, c as usize, 32, 1);
        }
        assert_eq!(t.events.len(), 4);
        assert_eq!(t.dropped, 6);
        assert_eq!(t.events.front().map(|e| e.cycle), Some(6));
        // Metrics are unaffected by ring pressure.
        assert_eq!(t.windows[0].issues, 10);
    }

    #[test]
    fn divergence_mirror_matches_direct_timeline() {
        let mut t = shard();
        let mut direct = DivergenceTimeline::new(10, 32);
        for (c, lanes) in [(0, 32), (1, 7), (2, 1), (15, 20)] {
            t.on_issue(c, 1, 0, lanes, 1);
            direct.record_issue(c, lanes);
        }
        t.on_idle(3);
        direct.record_idle(3);
        assert_eq!(t.divergence, direct);
    }

    #[test]
    fn merge_is_sm_order_deterministic() {
        let mut a = shard();
        let mut b = SmTelemetry::new(1, &TelemetrySpec::trace(), 10, 32);
        a.on_issue(0, 0, 0, 32, 1);
        b.on_issue(0, 0, 0, 8, 1);
        let r1 = report_of(&[a.clone(), b.clone()]);
        let r2 = report_of(&[a, b]);
        assert_eq!(r1.events, r2.events);
        assert_eq!(r1.windows, r2.windows);
        assert_eq!(ChromeTraceSink.render(&r1), ChromeTraceSink.render(&r2));
    }

    #[test]
    fn chrome_trace_is_balanced_json() {
        let mut t = shard();
        t.on_issue(0, 1, 0, 32, 1);
        t.on_warp_birth(0, 2, true, 16);
        t.on_spawn(1, 1, 99, 12);
        t.on_offchip(2, 1, 32, 5);
        t.on_tex(3, 1, 32, 2);
        let json = ChromeTraceSink.render(&report_of(&[t]));
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.contains("\"ph\":\"C\""));
        let depth_check = json.chars().fold((0i64, 0i64), |(c, s), ch| match ch {
            '{' => (c + 1, s),
            '}' => (c - 1, s),
            '[' => (c, s + 1),
            ']' => (c, s - 1),
            _ => (c, s),
        });
        assert_eq!(depth_check, (0, 0), "unbalanced JSON: {json}");
    }

    #[test]
    fn csv_divergence_section_is_verbatim_timeline() {
        let mut t = shard();
        t.on_issue(0, 1, 0, 32, 1);
        t.on_idle(12);
        let report = report_of(&[t]);
        let csv = CsvMetricsSink.render(&report);
        let section = CsvMetricsSink::divergence_section(&csv).expect("has divergence section");
        assert_eq!(section, report.divergence.to_csv());
    }

    #[test]
    fn snapshot_line_is_single_line() {
        let mut t = shard();
        t.on_issue(0, 1, 0, 32, 1);
        let line = SnapshotSink.render(&report_of(&[t]));
        assert!(!line.contains('\n'));
        assert!(line.contains("issues 1"));
    }

    #[test]
    fn encode_restore_roundtrips_metrics_and_depths() {
        let mut t = shard();
        t.on_issue(0, 1, 0, 32, 1);
        t.on_issue(1, 1, 1, 16, 3);
        t.on_warp_birth(2, 4, true, 8);
        let mut enc = Encoder::new();
        t.encode_state(&mut enc);
        let bytes = enc.into_bytes();
        let mut back = SmTelemetry::new(0, &TelemetrySpec::off(), 10, 32);
        let mut dec = Decoder::new(&bytes);
        back.restore_state(&mut dec).expect("restores");
        assert!(dec.is_finished());
        assert_eq!(back.windows, t.windows);
        assert_eq!(back.divergence, t.divergence);
        assert_eq!(back.depths, t.depths);
        assert!(back.metrics && back.trace);
        // The ring does not survive: traces restart after resume.
        assert!(back.events.is_empty());
    }
}
