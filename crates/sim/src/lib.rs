//! # simt-sim — cycle-level SIMT streaming-multiprocessor simulator
//!
//! A GPGPU-Sim-style simulator of a wide SIMT machine configured like the
//! NVIDIA Quadro FX5800 of paper Table I: 30 SMs, 32-thread warps, 1024
//! threads/SM, a banked off-chip memory system (from [`simt_mem`]), PDOM
//! branch reconvergence, and — when enabled — the dynamic μ-kernel
//! hardware of [`dmk_core`].
//!
//! The timing model is first-order and matches the paper's reporting
//! conventions:
//!
//! * each SM issues at most **one warp-instruction per cycle** (the
//!   FX5800's 8 SPs iterate a 32-thread warp over 4 beats — one 32-wide
//!   issue slot per cycle);
//! * **IPC counts committed thread-instructions**, so the chip maximum is
//!   `30 SMs × 32 lanes = 960`;
//! * memory instructions park the warp until the [`simt_mem`] timing model
//!   releases it; other warps hide the latency;
//! * branch divergence is handled by a per-warp PDOM reconvergence stack
//!   using immediate post-dominators precomputed by [`simt_isa`].
//!
//! Two launch-scheduling models are provided (paper §VI): **block
//! scheduling** (whole thread blocks, FX5800 behaviour) and **thread/warp
//! scheduling** (individual warps, required by dynamic μ-kernels).
//!
//! The crate also contains a functional single-thread interpreter used as
//! a correctness oracle and to drive the MIMD-theoretical model of paper
//! Fig. 10.
//!
//! ## Example
//!
//! ```
//! use simt_sim::{Gpu, GpuConfig, Launch, RunOutcome};
//!
//! let program = simt_isa::assemble(
//!     r#"
//!     .kernel main
//!     main:
//!         mov.u32 r1, %tid
//!         mul.lo.s32 r2, r1, 4
//!         st.global.u32 [r2+0], r1
//!         exit
//!     "#,
//! )?;
//! let mut gpu = Gpu::builder(GpuConfig::tiny()).build();
//! gpu.mem_mut().alloc_global(64, "out");
//! gpu.launch(Launch {
//!     program,
//!     entry: "main".into(),
//!     num_threads: 16,
//!     threads_per_block: 8,
//! }).expect("a well-formed launch");
//! let summary = gpu.run(1_000_000).expect("fault-free program");
//! assert_eq!(summary.outcome, RunOutcome::Completed);
//! assert_eq!(gpu.mem().read_u32(simt_isa::Space::Global, 12), 3);
//! # Ok::<(), simt_isa::AsmError>(())
//! ```
//!
//! ## Fault model
//!
//! [`Gpu::launch`] rejects malformed launches with a typed
//! [`LaunchError`]; runtime misbehaviour (illegal memory accesses,
//! spawning without μ-kernel hardware, an exhausted spawn LUT) raises a
//! typed [`Fault`] handled per [`FaultPolicy`] — abort with a
//! [`SimError`], or kill the faulting warp and keep rendering. A watchdog
//! turns livelocks into [`RunOutcome::Deadlock`] with per-SM diagnostics,
//! and the deterministic [`Injector`] can force back-pressure and trap
//! events at chosen cycles to test the recovery paths.
//!
//! ## Checkpoint/restore
//!
//! Between [`Gpu::run`] calls the complete architectural state can be
//! captured with [`Gpu::checkpoint`] into a versioned, checksummed
//! [`Snapshot`] (serializable to disk) and rebuilt with [`Gpu::restore`];
//! the restored machine's continuation is bit-identical to never having
//! stopped, at every parallelism level. Corrupt or truncated snapshots
//! are rejected with a typed [`RestoreError`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![cfg_attr(not(test), warn(clippy::unwrap_used, clippy::expect_used))]

mod checkpoint;
mod config;
mod fault;
mod gpu;
mod interp;
mod mimd;
pub mod oracle;
mod ready;
mod sm;
mod stats;
pub mod telemetry;
mod thread;
mod warp;

pub use checkpoint::{
    config_digest, open_frame, program_digest, seal_frame, write_atomic, RestoreError, Snapshot,
    SNAPSHOT_MAGIC, SNAPSHOT_VERSION,
};
pub use config::{GpuConfig, SchedulingModel, SpawnPolicy};
pub use fault::{
    DeadlockDiagnostics, Fault, FaultKind, FaultPolicy, InjectedFault, Injector, LaunchError,
    SimError, SmSnapshot, WarpSnapshot,
};
pub use gpu::{Gpu, GpuBuilder, Launch, RunOutcome, RunSummary};
pub use interp::{interpret_thread, InterpError, InterpResult, RefMachine, ThreadInterp};
pub use mimd::{mimd_theoretical, MimdReport};
pub use oracle::{run_case, shrink, CaseReport, Mismatch};
pub use sm::Sm;
pub use stats::{DivergenceTimeline, SimStats, OCCUPANCY_BUCKETS};
pub use telemetry::{
    ChromeTraceSink, CsvMetricsSink, ProgressPulse, SnapshotSink, TelemetryReport, TelemetrySpec,
    TraceEvent, TraceEventKind, TraceSink, WindowCounters,
};
pub use thread::{LaneState, ThreadCtx};
pub use warp::{StackEntry, Warp, WarpState};
