//! Machine configuration (paper Table I).

use crate::fault::FaultPolicy;
use dmk_core::DmkConfig;
use serde::{Deserialize, Serialize};
use simt_mem::MemConfig;
use std::fmt;

/// When the `spawn` instruction actually creates threads.
///
/// The paper's evaluated implementation is [`SpawnPolicy::Always`] ("we
/// implemented a naïve thread spawning method, where the entire store and
/// restore operations ... are performed for every loop iteration", §VI-A).
/// [`SpawnPolicy::OnDivergence`] implements the §IX future-work
/// optimization: when *every* populated lane of the warp executes the same
/// spawn, the hardware branches the warp to the target μ-kernel in place —
/// no thread creation, no trip through the warp-formation unit — while
/// still handing each lane its state pointer through spawn memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SpawnPolicy {
    /// Every spawn creates threads (the paper's evaluated design).
    Always,
    /// Convergent warps branch instead of spawning (§IX optimization).
    OnDivergence,
}

/// How launch-time threads are assigned to SMs (paper §VI).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SchedulingModel {
    /// FX5800 behaviour: a thread block is dispatched only when the SM has
    /// room for the *entire* block, and block slots are limited
    /// (`max_blocks_per_sm`). Supports intra-block synchronization.
    Block,
    /// Warp-granular scheduling: individual warps are dispatched as long as
    /// thread/register resources allow, ignoring block boundaries. This is
    /// the model dynamic μ-kernels are designed for.
    Warp,
}

impl fmt::Display for SchedulingModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SchedulingModel::Block => f.write_str("block"),
            SchedulingModel::Warp => f.write_str("warp"),
        }
    }
}

/// Full machine configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GpuConfig {
    /// Streaming multiprocessors on the chip (Table I: 30).
    pub num_sms: usize,
    /// Threads per warp (Table I: 32).
    pub warp_size: u32,
    /// Stream processors per SM (Table I: 8). Documentation only — the
    /// issue model is one warp-instruction per SM per cycle.
    pub sps_per_sm: u32,
    /// Maximum resident threads per SM (Table I: 1024).
    pub max_threads_per_sm: u32,
    /// Maximum resident thread blocks per SM (Table I: 8).
    pub max_blocks_per_sm: u32,
    /// Register file size per SM, in 32-bit registers (Table I: 16384).
    pub registers_per_sm: u32,
    /// On-chip memory per SM in bytes (Table I: 64 KB).
    pub shared_mem_per_sm: u32,
    /// Launch scheduling model.
    pub scheduling: SchedulingModel,
    /// Extra issue latency for long operations (div/sqrt/rcp), cycles.
    pub long_op_latency: u32,
    /// Shader clock in GHz, used only to convert cycles to wall time when
    /// reporting rays/second (FX5800 shader clock ≈ 1.30 GHz).
    pub clock_ghz: f64,
    /// Memory-system configuration.
    pub mem: MemConfig,
    /// Dynamic μ-kernel hardware; `None` disables the spawn instruction
    /// (baseline PDOM machine).
    pub dmk: Option<DmkConfig>,
    /// When `spawn` creates threads vs branches in place.
    pub spawn_policy: SpawnPolicy,
    /// Divergence-timeline window size in cycles (statistics granularity).
    pub divergence_window: u64,
    /// What the chip does when a warp traps (illegal access, exhausted
    /// spawn LUT, injected fault): abort the run with a typed error, or
    /// kill the warp and keep going.
    pub fault_policy: FaultPolicy,
    /// Watchdog threshold: if no thread retires, spawns, or is killed for
    /// this many consecutive cycles while work remains, the run stops with
    /// [`crate::RunOutcome::Deadlock`] and per-SM diagnostics.
    pub watchdog_cycles: u64,
}

impl GpuConfig {
    /// The paper's simulated machine (Table I), baseline PDOM variant with
    /// block scheduling (the "traditional hardware" configuration).
    pub fn fx5800() -> Self {
        GpuConfig {
            num_sms: 30,
            warp_size: 32,
            sps_per_sm: 8,
            max_threads_per_sm: 1024,
            max_blocks_per_sm: 8,
            registers_per_sm: 16384,
            shared_mem_per_sm: 64 * 1024,
            scheduling: SchedulingModel::Block,
            long_op_latency: 8,
            clock_ghz: 1.30,
            mem: MemConfig::fx5800(),
            dmk: None,
            spawn_policy: SpawnPolicy::Always,
            divergence_window: 25_000,
            fault_policy: FaultPolicy::Abort,
            watchdog_cycles: 2_000_000,
        }
    }

    /// FX5800 with warp-granular launch scheduling ("PDOM Warp").
    pub fn fx5800_warp_sched() -> Self {
        GpuConfig {
            scheduling: SchedulingModel::Warp,
            ..GpuConfig::fx5800()
        }
    }

    /// FX5800 extended with the dynamic μ-kernel hardware (which requires
    /// warp scheduling, §VI).
    pub fn fx5800_dmk(dmk: DmkConfig) -> Self {
        GpuConfig {
            scheduling: SchedulingModel::Warp,
            dmk: Some(dmk),
            ..GpuConfig::fx5800()
        }
    }

    /// A deliberately small machine for fast unit tests: 2 SMs, 4-thread
    /// warps.
    pub fn tiny() -> Self {
        GpuConfig {
            num_sms: 2,
            warp_size: 4,
            sps_per_sm: 2,
            max_threads_per_sm: 32,
            max_blocks_per_sm: 4,
            registers_per_sm: 2048,
            shared_mem_per_sm: 16 * 1024,
            scheduling: SchedulingModel::Warp,
            long_op_latency: 4,
            clock_ghz: 1.0,
            mem: MemConfig::fx5800(),
            dmk: None,
            spawn_policy: SpawnPolicy::Always,
            divergence_window: 1_000,
            fault_policy: FaultPolicy::Abort,
            watchdog_cycles: 2_000_000,
        }
    }

    /// Peak committed thread-instructions per cycle for the whole chip.
    pub fn peak_ipc(&self) -> u64 {
        self.num_sms as u64 * u64::from(self.warp_size)
    }

    /// Converts a cycle count to seconds at the configured clock.
    pub fn cycles_to_seconds(&self, cycles: u64) -> f64 {
        cycles as f64 / (self.clock_ghz * 1e9)
    }

    /// Validates internal consistency.
    ///
    /// # Panics
    ///
    /// Panics when the warp size exceeds 64 lanes (mask width), is zero, or
    /// the DMK warp size disagrees with the machine warp size.
    pub fn validate(&self) {
        assert!(
            self.warp_size > 0 && self.warp_size <= 64,
            "warp size must be 1..=64"
        );
        assert!(self.num_sms > 0, "need at least one SM");
        assert!(
            self.watchdog_cycles > 0,
            "watchdog threshold must be positive"
        );
        if let Some(d) = &self.dmk {
            assert_eq!(
                d.warp_size, self.warp_size,
                "DMK warp size must match machine"
            );
            assert_eq!(
                d.threads_per_sm, self.max_threads_per_sm,
                "DMK thread capacity must match machine"
            );
        }
    }
}

impl Default for GpuConfig {
    fn default() -> Self {
        GpuConfig::fx5800()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fx5800_matches_table_1() {
        let c = GpuConfig::fx5800();
        assert_eq!(c.num_sms, 30);
        assert_eq!(c.warp_size, 32);
        assert_eq!(c.sps_per_sm, 8);
        assert_eq!(c.max_threads_per_sm, 1024);
        assert_eq!(c.max_blocks_per_sm, 8);
        assert_eq!(c.registers_per_sm, 16384);
        assert_eq!(c.shared_mem_per_sm, 64 * 1024);
        assert_eq!(c.peak_ipc(), 960);
        c.validate();
    }

    #[test]
    fn dmk_variant_uses_warp_scheduling() {
        let c = GpuConfig::fx5800_dmk(DmkConfig::paper());
        assert_eq!(c.scheduling, SchedulingModel::Warp);
        assert!(c.dmk.is_some());
        c.validate();
    }

    #[test]
    fn cycles_to_seconds_uses_clock() {
        let c = GpuConfig::fx5800();
        let s = c.cycles_to_seconds(1_300_000_000);
        assert!((s - 1.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "must match machine")]
    fn mismatched_dmk_warp_size_rejected() {
        let mut c = GpuConfig::tiny();
        c.dmk = Some(DmkConfig::paper());
        c.validate();
    }
}
