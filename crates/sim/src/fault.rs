//! Hardware-style fault model: typed launch errors, runtime warp traps,
//! deadlock diagnostics, and deterministic fault injection.
//!
//! Real GPUs do not unwind the host process when device code misbehaves —
//! they raise a typed error at launch time (bad configuration) or trap the
//! offending warp at run time (illegal address, exhausted hardware
//! resource). This module gives the simulator the same shape:
//!
//! * [`LaunchError`] — everything [`crate::Gpu::launch`] can reject before
//!   a single cycle is simulated.
//! * [`Fault`] / [`FaultKind`] — a runtime trap raised by one warp, with
//!   the SM, warp, PC, and cycle where it happened.
//! * [`FaultPolicy`] — what the chip does with a trap: abort the
//!   simulation with a typed [`SimError`], or kill the faulting warp and
//!   keep rendering (graceful degradation, counted in
//!   [`crate::stats::SimStats`]).
//! * [`DeadlockDiagnostics`] — the watchdog's snapshot of every SM when no
//!   forward progress is made for [`crate::GpuConfig::watchdog_cycles`]
//!   cycles.
//! * [`Injector`] — a seeded, deterministic fault injector that forces
//!   spawn-FIFO-full, formation-full, state-slot-exhaustion, and trap
//!   events inside chosen cycle windows, for testing the recovery paths.

use simt_isa::codec::{CodecError, Decoder, Encoder};
use simt_isa::Space;
use simt_mem::MemFault;
use std::fmt;
use std::ops::Range;

/// What a warp trapped on.
///
/// Marked `#[non_exhaustive]`: richer hardware models will trap on new
/// things, so downstream matches need a wildcard arm.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum FaultKind {
    /// An illegal memory access (misaligned, out-of-bounds store, write to
    /// a read-only space, …).
    Memory(MemFault),
    /// A `spawn` instruction (or spawn-space access) executed on a machine
    /// whose dynamic μ-kernel hardware is disabled.
    SpawnUnsupported,
    /// A `spawn` needed a new LUT line but every line was in use: the
    /// program uses more concurrent μ-kernel targets than the spawn LUT
    /// supports.
    LutExhausted {
        /// The μ-kernel entry PC that could not be allocated a line.
        target_pc: usize,
        /// Number of LUT lines in the configured hardware.
        capacity: usize,
    },
    /// The warp's PC left the program: an instruction fetch past the last
    /// instruction (a wild branch, or a control-flow stack corrupted by an
    /// earlier fault under [`FaultPolicy::KillWarp`]).
    FetchOutOfRange {
        /// Number of instructions in the running program.
        len: usize,
    },
    /// A trap forced by the [`Injector`] (no architectural cause).
    Injected,
}

impl fmt::Display for FaultKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultKind::Memory(m) => write!(f, "{m}"),
            FaultKind::SpawnUnsupported => {
                write!(
                    f,
                    "spawn executed but dynamic μ-kernel hardware is disabled"
                )
            }
            FaultKind::LutExhausted {
                target_pc,
                capacity,
            } => write!(
                f,
                "spawn LUT exhausted: no line for μ-kernel at pc {target_pc} ({capacity} lines)"
            ),
            FaultKind::FetchOutOfRange { len } => {
                write!(
                    f,
                    "instruction fetch past the end of the program ({len} instructions)"
                )
            }
            FaultKind::Injected => write!(f, "fault injected by the test harness"),
        }
    }
}

/// A runtime trap raised by one warp.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Fault {
    /// What the warp trapped on.
    pub kind: FaultKind,
    /// SM index where the trap was raised.
    pub sm: usize,
    /// Hardware warp id (unique per SM across the run).
    pub warp: usize,
    /// PC of the faulting instruction.
    pub pc: usize,
    /// Cycle at which the trap was raised.
    pub cycle: u64,
}

impl fmt::Display for Fault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "fault at cycle {}: sm {} warp {} pc {}: {}",
            self.cycle, self.sm, self.warp, self.pc, self.kind
        )
    }
}

impl std::error::Error for Fault {}

fn put_space(enc: &mut Encoder, s: Space) {
    enc.put_u8(s as u8);
}

fn take_space(dec: &mut Decoder<'_>) -> Result<Space, CodecError> {
    let tag = dec.take_u8()?;
    Space::ALL
        .get(tag as usize)
        .copied()
        .ok_or(CodecError::BadTag {
            what: "address space",
            tag: tag as u64,
        })
}

fn put_mem_fault(enc: &mut Encoder, m: &MemFault) {
    match m {
        MemFault::Misaligned { space, addr } => {
            enc.put_u8(0);
            put_space(enc, *space);
            enc.put_u32(*addr);
        }
        MemFault::GlobalStoreOob { addr, allocated } => {
            enc.put_u8(1);
            enc.put_u32(*addr);
            enc.put_u32(*allocated);
        }
        MemFault::ConstStore { addr } => {
            enc.put_u8(2);
            enc.put_u32(*addr);
        }
        MemFault::LocalOob { addr, stride } => {
            enc.put_u8(3);
            enc.put_u32(*addr);
            enc.put_u32(*stride);
        }
        MemFault::Unmapped { space } => {
            enc.put_u8(4);
            put_space(enc, *space);
        }
    }
}

fn take_mem_fault(dec: &mut Decoder<'_>) -> Result<MemFault, CodecError> {
    let tag = dec.take_u8()?;
    Ok(match tag {
        0 => MemFault::Misaligned {
            space: take_space(dec)?,
            addr: dec.take_u32()?,
        },
        1 => MemFault::GlobalStoreOob {
            addr: dec.take_u32()?,
            allocated: dec.take_u32()?,
        },
        2 => MemFault::ConstStore {
            addr: dec.take_u32()?,
        },
        3 => MemFault::LocalOob {
            addr: dec.take_u32()?,
            stride: dec.take_u32()?,
        },
        4 => MemFault::Unmapped {
            space: take_space(dec)?,
        },
        _ => {
            return Err(CodecError::BadTag {
                what: "memory fault",
                tag: tag as u64,
            })
        }
    })
}

impl Fault {
    /// Serializes the fault (kind + location) for a simulator checkpoint.
    pub(crate) fn encode_state(&self, enc: &mut Encoder) {
        match &self.kind {
            FaultKind::Memory(m) => {
                enc.put_u8(0);
                put_mem_fault(enc, m);
            }
            FaultKind::SpawnUnsupported => enc.put_u8(1),
            FaultKind::LutExhausted {
                target_pc,
                capacity,
            } => {
                enc.put_u8(2);
                enc.put_usize(*target_pc);
                enc.put_usize(*capacity);
            }
            FaultKind::FetchOutOfRange { len } => {
                enc.put_u8(3);
                enc.put_usize(*len);
            }
            FaultKind::Injected => enc.put_u8(4),
        }
        enc.put_usize(self.sm);
        enc.put_usize(self.warp);
        enc.put_usize(self.pc);
        enc.put_u64(self.cycle);
    }

    /// Rebuilds a fault written by [`Fault::encode_state`].
    pub(crate) fn restore_state(dec: &mut Decoder<'_>) -> Result<Self, CodecError> {
        let tag = dec.take_u8()?;
        let kind = match tag {
            0 => FaultKind::Memory(take_mem_fault(dec)?),
            1 => FaultKind::SpawnUnsupported,
            2 => FaultKind::LutExhausted {
                target_pc: dec.take_usize()?,
                capacity: dec.take_usize()?,
            },
            3 => FaultKind::FetchOutOfRange {
                len: dec.take_usize()?,
            },
            4 => FaultKind::Injected,
            _ => {
                return Err(CodecError::BadTag {
                    what: "fault kind",
                    tag: tag as u64,
                })
            }
        };
        Ok(Fault {
            kind,
            sm: dec.take_usize()?,
            warp: dec.take_usize()?,
            pc: dec.take_usize()?,
            cycle: dec.take_u64()?,
        })
    }
}

/// What the chip does when a warp traps.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, serde::Serialize, serde::Deserialize)]
pub enum FaultPolicy {
    /// Stop the simulation: [`crate::Gpu::run`] returns the fault as
    /// `Err(SimError::Fault(..))`.
    #[default]
    Abort,
    /// Kill the faulting warp (its live lanes are discarded, not retired),
    /// record the fault in [`crate::stats::SimStats`], and keep running.
    KillWarp,
}

/// Why [`crate::Gpu::launch`] rejected a launch request.
///
/// Marked `#[non_exhaustive]`: launch validation grows with the machine
/// model, so downstream matches need a wildcard arm.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum LaunchError {
    /// The previous launch has not fully drained yet.
    LaunchActive,
    /// The named entry point does not exist in the program.
    UnknownEntry {
        /// The entry name that was requested.
        entry: String,
    },
    /// `num_threads` was zero.
    NoThreads,
    /// `threads_per_block` is not a positive multiple of the warp size.
    BadBlockSize {
        /// The requested block size.
        threads_per_block: u32,
        /// The machine's warp size.
        warp_size: u32,
    },
    /// The program contains `spawn` instructions but the machine has no
    /// dynamic μ-kernel hardware.
    SpawnHardwareMissing,
    /// The program spawns more distinct μ-kernel targets than the spawn
    /// LUT has lines, so a runtime LUT trap would be inevitable.
    LutCapacityExceeded {
        /// Distinct μ-kernel targets reachable via `spawn`.
        targets: usize,
        /// LUT lines in the configured hardware.
        capacity: usize,
    },
}

impl fmt::Display for LaunchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LaunchError::LaunchActive => write!(f, "the previous launch is still active"),
            LaunchError::UnknownEntry { entry } => write!(f, "entry point `{entry}` not found"),
            LaunchError::NoThreads => write!(f, "launch has zero threads"),
            LaunchError::BadBlockSize {
                threads_per_block,
                warp_size,
            } => write!(
                f,
                "block size {threads_per_block} is not a positive multiple of the warp size {warp_size}"
            ),
            LaunchError::SpawnHardwareMissing => {
                write!(f, "program uses `spawn` but dynamic μ-kernel hardware is disabled")
            }
            LaunchError::LutCapacityExceeded { targets, capacity } => write!(
                f,
                "program spawns {targets} distinct μ-kernels but the spawn LUT has {capacity} lines"
            ),
        }
    }
}

impl std::error::Error for LaunchError {}

/// A fatal simulation error returned by [`crate::Gpu::run`].
///
/// Marked `#[non_exhaustive]`: future machine models may fail fatally for
/// new reasons, so downstream matches need a wildcard arm. Like
/// [`LaunchError`] it implements `std::error::Error + Display`, so
/// callers can format it with `{e}` instead of matching.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SimError {
    /// A warp trapped under [`FaultPolicy::Abort`].
    Fault(Fault),
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Fault(fault) => write!(f, "{fault}"),
        }
    }
}

impl std::error::Error for SimError {}

/// One warp's state at the moment the watchdog fired.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WarpSnapshot {
    /// Hardware warp id.
    pub warp: usize,
    /// Current PC (top of the PDOM stack), `None` if the warp finished.
    pub pc: Option<usize>,
    /// Lanes still live under the current stack entry.
    pub live_lanes: u32,
    /// Cycle at which the warp is next schedulable.
    pub ready_at: u64,
    /// Whether the warp was formed dynamically from spawned threads.
    pub is_dynamic: bool,
}

/// One SM's state at the moment the watchdog fired.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SmSnapshot {
    /// SM index.
    pub sm: usize,
    /// Resident warps.
    pub warps: Vec<WarpSnapshot>,
    /// Free spawn-memory state records (dmk machines only).
    pub free_state_slots: usize,
    /// Completed warps waiting in the new-warp FIFO.
    pub fifo_depth: usize,
}

/// Snapshot of the whole chip attached to [`crate::RunOutcome::Deadlock`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeadlockDiagnostics {
    /// Cycle at which the watchdog fired.
    pub cycle: u64,
    /// The configured no-progress threshold that was exceeded.
    pub watchdog_cycles: u64,
    /// Launch blocks still waiting for an SM.
    pub pending_blocks: usize,
    /// Per-SM warp states.
    pub sms: Vec<SmSnapshot>,
}

impl fmt::Display for DeadlockDiagnostics {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "deadlock: no forward progress for {} cycles (at cycle {}), {} blocks pending",
            self.watchdog_cycles, self.cycle, self.pending_blocks
        )?;
        for sm in &self.sms {
            writeln!(
                f,
                "  sm {}: {} warps, {} free state slots, fifo depth {}",
                sm.sm,
                sm.warps.len(),
                sm.free_state_slots,
                sm.fifo_depth
            )?;
            for w in &sm.warps {
                writeln!(
                    f,
                    "    warp {}{}: pc {:?}, {} live lanes, ready at {}",
                    w.warp,
                    if w.is_dynamic { " (dynamic)" } else { "" },
                    w.pc,
                    w.live_lanes,
                    w.ready_at
                )?;
            }
        }
        Ok(())
    }
}

/// An event class the [`Injector`] can force.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InjectedFault {
    /// The new-warp FIFO reports full on `spawn` (back-pressure: the
    /// spawning warp stalls and retries).
    SpawnFifoFull,
    /// The formation area reports no free blocks on `spawn` (same
    /// back-pressure path).
    FormationFull,
    /// The SM reports no free spawn-memory state records, starving
    /// launch-warp admission for the cycle.
    StateSlotsExhausted,
    /// The next issuing warp traps with [`FaultKind::Injected`].
    Trap,
}

#[derive(Debug, Clone)]
struct Injection {
    what: InjectedFault,
    from: u64,
    until: u64,
    probability: f64,
}

/// Seeded, deterministic fault injector.
///
/// Events are forced inside half-open cycle windows. With the default
/// probability of 1 the injector is a pure function of the cycle number;
/// with a fractional probability, firing is decided by a hash of the seed
/// and the cycle, so a given seed always reproduces the same event stream.
///
/// ```
/// use simt_sim::{InjectedFault, Injector};
///
/// let inj = Injector::new(42).force(InjectedFault::SpawnFifoFull, 100..200);
/// assert!(inj.fires(InjectedFault::SpawnFifoFull, 150));
/// assert!(!inj.fires(InjectedFault::SpawnFifoFull, 250));
/// ```
#[derive(Debug, Clone)]
pub struct Injector {
    seed: u64,
    events: Vec<Injection>,
}

impl Injector {
    /// Creates an injector with no scheduled events.
    pub fn new(seed: u64) -> Self {
        Injector {
            seed,
            events: Vec::new(),
        }
    }

    /// Forces `what` on every cycle in `cycles`.
    #[must_use]
    pub fn force(self, what: InjectedFault, cycles: Range<u64>) -> Self {
        self.force_with_probability(what, cycles, 1.0)
    }

    /// Forces `what` on each cycle in `cycles` independently with
    /// probability `p`, decided deterministically from the seed.
    #[must_use]
    pub fn force_with_probability(
        mut self,
        what: InjectedFault,
        cycles: Range<u64>,
        p: f64,
    ) -> Self {
        self.events.push(Injection {
            what,
            from: cycles.start,
            until: cycles.end,
            probability: p,
        });
        self
    }

    /// Whether `what` fires at `cycle`.
    pub fn fires(&self, what: InjectedFault, cycle: u64) -> bool {
        self.events.iter().any(|e| {
            e.what == what
                && cycle >= e.from
                && cycle < e.until
                && (e.probability >= 1.0 || self.draw(what, cycle) < e.probability)
        })
    }

    /// Serializes the injector (seed + scheduled events) for a simulator
    /// checkpoint. Firing is a pure function of `(seed, events, cycle)`, so
    /// this is the injector's complete state.
    pub(crate) fn encode_state(&self, enc: &mut Encoder) {
        enc.put_u64(self.seed);
        enc.put_usize(self.events.len());
        for e in &self.events {
            enc.put_u8(e.what as u8);
            enc.put_u64(e.from);
            enc.put_u64(e.until);
            enc.put_f64(e.probability);
        }
    }

    /// Rebuilds an injector written by [`Injector::encode_state`].
    pub(crate) fn restore_state(dec: &mut Decoder<'_>) -> Result<Self, CodecError> {
        let seed = dec.take_u64()?;
        let n = dec.take_len(25)?;
        let events = (0..n)
            .map(|_| {
                let tag = dec.take_u8()?;
                let what = match tag {
                    0 => InjectedFault::SpawnFifoFull,
                    1 => InjectedFault::FormationFull,
                    2 => InjectedFault::StateSlotsExhausted,
                    3 => InjectedFault::Trap,
                    _ => {
                        return Err(CodecError::BadTag {
                            what: "injected fault",
                            tag: tag as u64,
                        })
                    }
                };
                Ok(Injection {
                    what,
                    from: dec.take_u64()?,
                    until: dec.take_u64()?,
                    probability: dec.take_f64()?,
                })
            })
            .collect::<Result<_, CodecError>>()?;
        Ok(Injector { seed, events })
    }

    /// Deterministic uniform draw in `[0, 1)` keyed by seed, event, cycle.
    fn draw(&self, what: InjectedFault, cycle: u64) -> f64 {
        let mut z = self
            .seed
            .wrapping_add(cycle.wrapping_mul(0x9e37_79b9_7f4a_7c15))
            .wrapping_add(what as u64 + 1);
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^= z >> 31;
        (z >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn injector_windows_are_half_open() {
        let inj = Injector::new(1).force(InjectedFault::Trap, 10..20);
        assert!(!inj.fires(InjectedFault::Trap, 9));
        assert!(inj.fires(InjectedFault::Trap, 10));
        assert!(inj.fires(InjectedFault::Trap, 19));
        assert!(!inj.fires(InjectedFault::Trap, 20));
        assert!(!inj.fires(InjectedFault::SpawnFifoFull, 15));
    }

    #[test]
    fn probabilistic_injection_is_deterministic() {
        let a = Injector::new(7).force_with_probability(InjectedFault::Trap, 0..1000, 0.5);
        let b = Injector::new(7).force_with_probability(InjectedFault::Trap, 0..1000, 0.5);
        let fired: Vec<bool> = (0..1000).map(|c| a.fires(InjectedFault::Trap, c)).collect();
        let again: Vec<bool> = (0..1000).map(|c| b.fires(InjectedFault::Trap, c)).collect();
        assert_eq!(fired, again);
        let count = fired.iter().filter(|&&f| f).count();
        assert!(count > 300 && count < 700, "p=0.5 fired {count}/1000");
    }

    #[test]
    fn fault_display_includes_location() {
        let f = Fault {
            kind: FaultKind::Injected,
            sm: 3,
            warp: 7,
            pc: 12,
            cycle: 99,
        };
        let s = f.to_string();
        assert!(s.contains("sm 3") && s.contains("warp 7") && s.contains("pc 12"));
    }
}
