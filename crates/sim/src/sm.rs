//! One streaming multiprocessor: warp pool, issue logic, PDOM branching,
//! the spawn datapath, and per-SM resource accounting.

use crate::config::{GpuConfig, SpawnPolicy};
use crate::fault::{Fault, FaultKind, InjectedFault, Injector, SmSnapshot, WarpSnapshot};
use crate::ready::ReadySet;
use crate::stats::SimStats;
use crate::telemetry::{SmTelemetry, TelemetrySpec};
use crate::thread::ThreadCtx;
use crate::warp::Warp;
use dmk_core::{CompletedWarp, SpawnError, SpawnMemoryLayout, WarpFormation};
use simt_isa::codec::{CodecError, Decoder, Encoder};
use simt_isa::{Instr, Program, ReconvergenceTable, Space, Width};
use simt_mem::{
    BatchRequest, FabricView, FunctionalOp, MemFault, MemoryFabric, OnChipMemory, PendingAccess,
    SmMemFrontend, TrafficStats, WarpAccess,
};
use std::collections::HashMap;

/// One access mid-flight through the hierarchy's batched phase B: its
/// functional ops were applied at staging, its fabric requests were tagged
/// into the interconnect batch, and its wake-up waits for the arbitrated
/// ready times to scatter back (see [`Sm::stage_pending`]).
#[derive(Debug)]
struct StagedAccess {
    /// Warp slot validated at staging (`None` if the warp died).
    slot: Option<usize>,
    /// Whether the warp waits for the ready time (loads).
    wait: bool,
    /// Whether the access contributed requests to the batch.
    had_requests: bool,
    /// L1 lines whose MSHR fill this access's requests complete.
    fill_lines: Vec<u32>,
    /// Outstanding fills this access merged into.
    merge_lines: Vec<u32>,
    /// Latest arbitrated ready time among this access's requests.
    ready: u64,
}

/// Execution context shared by all SMs for the current launch.
#[derive(Debug)]
pub(crate) struct ExecCtx<'a> {
    pub program: &'a Program,
    pub rtab: &'a ReconvergenceTable,
    /// Registers per thread charged against the SM register file. Per the
    /// paper (§IV-D) dynamic warps are charged the *maximum* across
    /// μ-kernels, which for a single combined program is its register count.
    pub regs_per_thread: u32,
    /// Total launch threads (`%ntid`).
    pub ntid: u32,
}

/// One streaming multiprocessor.
#[derive(Debug)]
pub struct Sm {
    id: usize,
    warp_size: u32,
    max_threads: u32,
    max_blocks: u32,
    max_regs: u32,
    long_op_latency: u32,
    warps: Vec<Warp>,
    next_warp_id: usize,
    rr: usize,
    shared: OnChipMemory,
    spawn_mem: Option<OnChipMemory>,
    formation: Option<WarpFormation>,
    threads_used: u32,
    regs_used: u32,
    /// Live warps per resident block (block scheduling).
    blocks: HashMap<usize, u32>,
    /// Free spawn-memory state records (dmk only).
    free_state_slots: Vec<u32>,
    /// Per-SM memory frontend: coalescer, read-only (texture) cache,
    /// on-chip load-store port, and this SM's traffic shard.
    frontend: SmMemFrontend,
    spawn_policy: SpawnPolicy,
    /// Cycle until which the issue port is blocked by bank-conflict
    /// instruction replays (GT200-style: a conflicting access re-issues
    /// once per extra pass, stealing issue slots from every warp).
    issue_blocked_until: u64,
    /// This SM's statistics shard. Phase A runs SMs on separate threads,
    /// so counters accumulate here and are merged by the GPU at run end.
    stats: SimStats,
    /// Off-chip work emitted during phase A, drained by the GPU against
    /// the shared fabric in SM-id order during phase B.
    pending: Vec<PendingAccess>,
    /// Accesses staged for the hierarchy's batched phase B: functional ops
    /// already applied, requests handed to the interconnect batch, wake-up
    /// held until [`Sm::commit_staged`] scatters the ready times back.
    /// Always empty between cycles.
    staged: Vec<StagedAccess>,
    /// This SM's telemetry shard, written like `stats` during phase A and
    /// merged by the GPU in SM-id order (see [`crate::telemetry`]).
    telemetry: SmTelemetry,
    /// Ready/parked partition over warp slots: the issue stage wakes and
    /// scans only warps that can actually issue (see [`crate::ready`]).
    ready: ReadySet,
    /// Late load results dropped because the destination warp or lane was
    /// dead by phase B (killed mid-flight). Diagnostic counter, not part
    /// of [`SimStats`] and not serialized.
    late_write_drops: u64,
    /// A warp may have finished since the last reap. Warps only finish
    /// through [`Sm::retire_lanes`] / [`Sm::kill_warp`] (the PDOM stack
    /// empties solely by lane-exit mask clears), so when this is clear the
    /// per-cycle reap scan is skipped outright. Derived state: not
    /// serialized, set after restore to force one scan.
    reap_dirty: bool,
    /// SM-side state that dispatch admission reads (formation FIFO and
    /// partials, warp-pool resources, live-warp census) may have changed
    /// since the last `dispatch_for_sm` call. While clear — and the
    /// launch-block queue is also unchanged — a dispatch call would be a
    /// provable no-op returning `false`, so the cycle loop skips it.
    /// Over-marking is harmless (one wasted call); set conservatively on
    /// every admission, exit, kill, reap, spawn, and formation-block
    /// release. Derived state: not serialized, set after restore.
    dispatch_dirty: bool,
    /// Pooled op buffers recycled between [`Sm::exec_memory`] and
    /// [`Sm::drain_pending`], so the per-access `Vec` churn of the load
    /// path does not hit the allocator in steady state.
    op_pool: Vec<Vec<FunctionalOp>>,
    /// Scratch address buffer for [`Sm::exec_memory`] (reused per access).
    addr_scratch: Vec<u32>,
    /// Scratch partitions of a texture access (cached / uncached lanes).
    tex_cached: Vec<u32>,
    tex_uncached: Vec<u32>,
}

impl Sm {
    /// Creates an SM for the given machine configuration.
    pub fn new(id: usize, cfg: &GpuConfig) -> Self {
        let (spawn_mem, formation, free_state_slots) = match &cfg.dmk {
            Some(d) => {
                let layout = SpawnMemoryLayout::new(d);
                let mem = OnChipMemory::new(layout.total_bytes(), cfg.mem.shared_banks);
                let slots = (0..d.threads_per_sm)
                    .rev()
                    .map(|i| layout.launch_state_addr(i))
                    .collect();
                (Some(mem), Some(WarpFormation::new(d)), slots)
            }
            None => (None, None, Vec::new()),
        };
        Sm {
            id,
            warp_size: cfg.warp_size,
            max_threads: cfg.max_threads_per_sm,
            max_blocks: cfg.max_blocks_per_sm,
            max_regs: cfg.registers_per_sm,
            long_op_latency: cfg.long_op_latency,
            warps: Vec::new(),
            next_warp_id: 0,
            rr: 0,
            shared: OnChipMemory::new(cfg.shared_mem_per_sm, cfg.mem.shared_banks),
            spawn_mem,
            formation,
            threads_used: 0,
            regs_used: 0,
            blocks: HashMap::new(),
            free_state_slots,
            frontend: SmMemFrontend::new(cfg.mem.clone()),
            spawn_policy: cfg.spawn_policy,
            issue_blocked_until: 0,
            stats: SimStats::new(cfg.divergence_window, cfg.warp_size),
            pending: Vec::new(),
            staged: Vec::new(),
            telemetry: SmTelemetry::new(
                id,
                &TelemetrySpec::off(),
                cfg.divergence_window,
                cfg.warp_size,
            ),
            ready: ReadySet::default(),
            late_write_drops: 0,
            reap_dirty: false,
            dispatch_dirty: true,
            op_pool: Vec::new(),
            addr_scratch: Vec::new(),
            tex_cached: Vec::new(),
            tex_uncached: Vec::new(),
        }
    }

    /// Replaces this SM's telemetry shard with a fresh one configured by
    /// `spec` (recordings restart from zero).
    pub(crate) fn set_telemetry(
        &mut self,
        spec: &TelemetrySpec,
        divergence_window: u64,
        warp_size: u32,
    ) {
        self.telemetry = SmTelemetry::new(self.id, spec, divergence_window, warp_size);
    }

    /// This SM's telemetry shard.
    pub(crate) fn telemetry(&self) -> &SmTelemetry {
        &self.telemetry
    }

    /// Texture-cache (hits, misses) so far, if a cache is configured.
    pub fn tex_stats(&self) -> Option<(u64, u64)> {
        self.frontend.tex_stats()
    }

    /// L1 data-cache `(hits, misses, mshr_merges, mshr_stalls)` so far,
    /// if an L1 is configured (see [`simt_mem::SmMemFrontend::l1_stats`]).
    pub fn l1_stats(&self) -> Option<(u64, u64, u64, u64)> {
        self.frontend.l1_stats()
    }

    /// This SM's statistics shard (counters since the last merge).
    pub fn stats(&self) -> &SimStats {
        &self.stats
    }

    /// Takes this SM's statistics shard, leaving `fresh` (a zeroed shard
    /// with the right divergence geometry) in its place.
    pub(crate) fn take_stats(&mut self, fresh: SimStats) -> SimStats {
        std::mem::replace(&mut self.stats, fresh)
    }

    /// This SM's traffic shard (cumulative across runs).
    pub fn traffic(&self) -> &TrafficStats {
        self.frontend.traffic()
    }

    /// SM index.
    pub fn id(&self) -> usize {
        self.id
    }

    /// Resident warps.
    pub fn warp_count(&self) -> usize {
        self.warps.len()
    }

    /// Resident threads.
    pub fn threads_used(&self) -> u32 {
        self.threads_used
    }

    /// The warp-formation unit, if dynamic μ-kernels are enabled.
    pub fn formation(&self) -> Option<&WarpFormation> {
        self.formation.as_ref()
    }

    /// Whether a warp of `threads` lanes fits the SM right now.
    pub fn fits_warp(&self, threads: u32, regs_per_thread: u32, needs_state_slots: bool) -> bool {
        if self.threads_used + threads > self.max_threads {
            return false;
        }
        if self.regs_used + threads * regs_per_thread > self.max_regs {
            return false;
        }
        if needs_state_slots
            && self.formation.is_some()
            && (self.free_state_slots.len() as u32) < threads
        {
            return false;
        }
        true
    }

    /// Whether a whole block of `block_threads` fits (block scheduling).
    pub fn fits_block(
        &self,
        block_threads: u32,
        regs_per_thread: u32,
        needs_state_slots: bool,
    ) -> bool {
        if self.blocks.len() as u32 >= self.max_blocks {
            return false;
        }
        if self.threads_used + block_threads > self.max_threads {
            return false;
        }
        if self.regs_used + block_threads * regs_per_thread > self.max_regs {
            return false;
        }
        if needs_state_slots
            && self.formation.is_some()
            && (self.free_state_slots.len() as u32) < block_threads
        {
            return false;
        }
        true
    }

    /// Admits a launch-time warp whose threads have ids `tids`, starting at
    /// `entry_pc`.
    ///
    /// # Panics
    ///
    /// Panics if resources were not checked first.
    // Expects are backed by the fits_warp assertion at function entry.
    #[allow(clippy::expect_used)]
    pub(crate) fn admit_launch_warp(
        &mut self,
        tids: &[u32],
        entry_pc: usize,
        block_id: Option<usize>,
        now: u64,
        ctx: &ExecCtx<'_>,
    ) {
        assert!(self.fits_warp(tids.len() as u32, ctx.regs_per_thread, true));
        let mut threads = Vec::with_capacity(tids.len());
        for &tid in tids {
            let mut t = ThreadCtx::new(tid, ctx.regs_per_thread);
            if self.formation.is_some() {
                let slot = self
                    .free_state_slots
                    .pop()
                    .expect("state slots checked in fits_warp");
                // Launch threads address their state record directly
                // (paper §IV-A1).
                t.spawn_mem_addr = slot;
                t.state_slot = Some(slot);
            }
            threads.push(t);
        }
        let n = threads.len() as u32;
        let wid = self.next_warp_id;
        let mut w = Warp::new(wid, self.warp_size, entry_pc, threads);
        self.next_warp_id += 1;
        w.block_id = block_id;
        if let Some(b) = block_id {
            *self.blocks.entry(b).or_insert(0) += 1;
        }
        self.threads_used += n;
        self.regs_used += n * ctx.regs_per_thread;
        self.stats.threads_launched += u64::from(n);
        self.telemetry.on_warp_birth(now, wid, false, n);
        self.dispatch_dirty = true;
        self.ready.mark_ready(self.warps.len());
        self.warps.push(w);
    }

    /// Admits a dynamically created warp popped from the new-warp FIFO.
    ///
    /// Reads each lane's state pointer from the formation block (hardware:
    /// computed from the LUT address minus the lane id, §IV-D) and sets
    /// `%spawnmem` to the lane's formation-slot address (Fig. 6).
    ///
    /// # Panics
    ///
    /// Panics if resources were not checked first or DMK is disabled.
    // Expects are backed by the fits_warp assertion and the DMK-only call sites.
    #[allow(clippy::expect_used)]
    pub(crate) fn admit_dynamic_warp(
        &mut self,
        cw: CompletedWarp,
        next_tid: &mut u32,
        now: u64,
        ctx: &ExecCtx<'_>,
    ) {
        assert!(self.fits_warp(cw.count, ctx.regs_per_thread, false));
        let spawn_mem = self.spawn_mem.as_ref().expect("dmk enabled");
        let mut threads = Vec::with_capacity(cw.count as usize);
        for lane in 0..cw.count {
            let slot_addr = cw.base_addr + 4 * lane;
            let state_ptr = spawn_mem.read(slot_addr);
            let mut t = ThreadCtx::new(*next_tid, ctx.regs_per_thread);
            *next_tid += 1;
            t.spawn_mem_addr = slot_addr;
            t.state_slot = Some(state_ptr);
            threads.push(t);
        }
        // Optionally charge the admission stage's state-pointer read-back
        // like any other spawn-space access (one word per admitted lane,
        // occupying the load-store port). Gated on its own knob — never on
        // the cache configuration — so cache ablations compare caches only
        // and the default machines keep the legacy free admission.
        if self.frontend.config().spawn_admission_reads {
            let req = WarpAccess {
                space: Space::Spawn,
                is_store: false,
                bytes_per_lane: 4,
                addresses: (0..cw.count).map(|l| cw.base_addr + 4 * l).collect(),
            };
            self.frontend.access_onchip(now, &req);
            if let Some(f) = self.formation.as_mut() {
                f.note_admission_reads(cw.count);
            }
        }
        let n = cw.count;
        let wid = self.next_warp_id;
        let mut w = Warp::new(wid, self.warp_size, cw.pc, threads);
        self.next_warp_id += 1;
        w.is_dynamic = true;
        w.formation_block = Some(cw.base_addr);
        self.threads_used += n;
        self.regs_used += n * ctx.regs_per_thread;
        self.telemetry.on_warp_birth(now, wid, true, n);
        self.dispatch_dirty = true;
        self.ready.mark_ready(self.warps.len());
        self.warps.push(w);
    }

    /// Pops finished warps, releasing their resources. Returns the number
    /// of warps retired.
    // Block bookkeeping is kept in lockstep with warp admission.
    #[allow(clippy::expect_used)]
    pub(crate) fn reap_finished(&mut self, now: u64, ctx: &ExecCtx<'_>) -> usize {
        if !self.reap_dirty {
            return 0;
        }
        self.reap_dirty = false;
        let mut reaped = 0;
        // Single order-preserving compaction pass: side effects fire in
        // ascending slot order, exactly like the old remove-in-place loop
        // but without an O(n) shift per reaped warp. Finished warps are
        // swapped past the keep cursor (never revisited) and truncated off.
        let mut keep = 0;
        for i in 0..self.warps.len() {
            if self.warps[i].is_finished() {
                self.telemetry.on_warp_retire(now, self.warps[i].id);
                let n = self.warps[i].population();
                self.threads_used -= n;
                self.regs_used -= n * ctx.regs_per_thread;
                if let Some(b) = self.warps[i].block_id {
                    let left = self.blocks.get_mut(&b).expect("block tracked");
                    *left -= 1;
                    if *left == 0 {
                        self.blocks.remove(&b);
                    }
                }
                if let Some(base) = self.warps[i].formation_block.take() {
                    if let Some(f) = self.formation.as_mut() {
                        f.release_block(base);
                    }
                }
                if let Some(base) = self.warps[i].elision_block.take() {
                    if let Some(f) = self.formation.as_mut() {
                        f.release_block(base);
                    }
                }
                reaped += 1;
            } else {
                if keep != i {
                    self.warps.swap(keep, i);
                }
                keep += 1;
            }
        }
        self.warps.truncate(keep);
        if self.rr >= self.warps.len() {
            self.rr = 0;
        }
        if reaped > 0 {
            self.dispatch_dirty = true;
            // Slot indices shifted: rebuild the ready/parked partition
            // from the surviving warps.
            let warps = &self.warps;
            self.ready
                .rebuild(now, warps.iter().enumerate().map(|(i, w)| (i, w.ready_at)));
        }
        reaped
    }

    /// Whether any resident warp still has lanes to run.
    pub(crate) fn has_live_warps(&mut self) -> bool {
        self.warps.iter_mut().any(|w| !w.is_finished())
    }

    /// Whether dispatch-visible SM state may have changed since the last
    /// [`Sm::clear_dispatch_dirty`] (see the field doc).
    pub(crate) fn dispatch_dirty(&self) -> bool {
        self.dispatch_dirty
    }

    /// Acknowledges a completed dispatch call: until the next mutation
    /// (or a launch-queue change) dispatch is a provable no-op here.
    pub(crate) fn clear_dispatch_dirty(&mut self) {
        self.dispatch_dirty = false;
    }

    /// Drains ready dynamic warps from the FIFO into the warp pool, with
    /// priority over launch work (paper §IV-D). Returns warps admitted.
    pub(crate) fn drain_dynamic(
        &mut self,
        next_tid: &mut u32,
        now: u64,
        ctx: &ExecCtx<'_>,
    ) -> usize {
        let mut admitted = 0;
        while let Some(cw) = self
            .formation
            .as_ref()
            .and_then(|f| f.peek_ready().copied())
        {
            if !self.fits_warp(cw.count, ctx.regs_per_thread, false) {
                break;
            }
            if let Some(f) = self.formation.as_mut() {
                f.pop_ready();
            }
            self.admit_dynamic_warp(cw, next_tid, now, ctx);
            admitted += 1;
        }
        admitted
    }

    /// Forces partial warps out of the formation pool when nothing else is
    /// schedulable (paper §IV-D). Returns warps admitted.
    pub(crate) fn force_out_partials(
        &mut self,
        next_tid: &mut u32,
        now: u64,
        ctx: &ExecCtx<'_>,
    ) -> usize {
        let mut admitted = 0;
        loop {
            // Peek the candidate size via the LUT before committing.
            let count = self.formation.as_ref().map_or(0, |f| {
                if f.partial_threads() == 0 {
                    0
                } else {
                    f.lut().partial_lines().first().map_or(0, |l| l.count)
                }
            });
            if count == 0 || !self.fits_warp(count, ctx.regs_per_thread, false) {
                break;
            }
            let Some(cw) = self
                .formation
                .as_mut()
                .and_then(WarpFormation::force_out_partial)
            else {
                break;
            };
            self.admit_dynamic_warp(cw, next_tid, now, ctx);
            admitted += 1;
        }
        admitted
    }

    /// Phase A: issues at most one warp-instruction against this SM's
    /// private state, deferring off-chip work into the pending queue.
    /// Returns `Ok(true)` if something issued (or productively stalled),
    /// `Ok(false)` on an idle cycle, and `Err` when the issuing warp
    /// trapped (the caller applies the configured [`crate::FaultPolicy`]).
    ///
    /// Takes only `&FabricView` — no shared mutable state — so the GPU may
    /// run this concurrently for different SMs with bit-identical results.
    pub(crate) fn step(
        &mut self,
        now: u64,
        ctx: &ExecCtx<'_>,
        view: &FabricView,
        injector: Option<&Injector>,
    ) -> Result<bool, Fault> {
        if now < self.issue_blocked_until {
            // Issue port consumed by bank-conflict replays.
            self.record_idle(now);
            return Ok(false);
        }
        let n = self.warps.len();
        if n == 0 {
            self.record_idle(now);
            return Ok(false);
        }
        // Wake parked warps whose cycle has arrived, then take the first
        // ready slot in rotation order — the same candidate the old
        // linear `(rr + k) % n` scan would have picked.
        {
            let warps = &self.warps;
            self.ready.wake(now, |slot| warps[slot].ready_at);
        }
        loop {
            let Some(idx) = self.ready.first_from(self.rr, n) else {
                self.record_idle(now);
                return Ok(false);
            };
            // Bitset entries are lazy too: commit leaves a warp with a
            // next-cycle wake in the set (the common case) rather than
            // round-tripping it through the heap, and phase B may then
            // push its `ready_at` out. Validate here, exactly like the
            // heap pop does, and park the stragglers.
            let at = self.warps[idx].ready_at;
            if at > now {
                self.ready.park(idx, at);
                continue;
            }
            let Some(entry) = self.warps[idx].current() else {
                // Finished warp not yet reaped: it can never issue again,
                // drop it from the ready set and keep scanning.
                self.ready.remove(idx);
                continue;
            };
            self.rr = (idx + 1) % n;
            if let Some(inj) = injector {
                if inj.fires(InjectedFault::Trap, now) {
                    self.stats.injected_events += 1;
                    return Err(self.fault(FaultKind::Injected, idx, entry.pc, now));
                }
            }
            self.exec_warp_instruction(idx, entry.pc, entry.mask, now, ctx, view, injector)?;
            return Ok(true);
        }
    }

    /// Records one idle SM-cycle across stats and telemetry.
    fn record_idle(&mut self, now: u64) {
        self.stats.idle_sm_cycles += 1;
        self.stats.divergence.record_idle(now);
        self.telemetry.on_idle(now);
    }

    /// Records `count` idle SM-cycles starting at `from` in one bulk
    /// update — byte-identical to calling the per-cycle path once per
    /// cycle (the event-driven loop uses this when it skips over a fully
    /// idle span).
    pub(crate) fn record_idle_span(&mut self, from: u64, count: u64) {
        self.stats.idle_sm_cycles += count;
        self.stats.divergence.record_idle_span(from, count);
        self.telemetry.on_idle_span(from, count);
    }

    /// The earliest future cycle at which this SM could issue a
    /// warp-instruction, or `None` if no resident warp will ever become
    /// ready (the SM is idle until new work is dispatched to it). Used by
    /// the event-driven cycle loop to skip over fully idle spans.
    pub(crate) fn next_issue_at(&mut self) -> Option<u64> {
        let mut min: Option<u64> = None;
        for i in 0..self.warps.len() {
            if self.warps[i].is_finished() {
                continue;
            }
            let at = self.warps[i].ready_at;
            min = Some(min.map_or(at, |m| m.min(at)));
        }
        min.map(|m| m.max(self.issue_blocked_until))
    }

    /// Phase B: applies this SM's deferred functional transfers and services
    /// its module requests against the shared fabric. The GPU calls this
    /// serially in SM-id order, which reproduces exactly the memory
    /// interleaving of the old fully-serial cycle loop.
    pub(crate) fn drain_pending(&mut self, now: u64, fabric: &mut MemoryFabric) {
        for mut pa in self.pending.drain(..) {
            // Slots are stable between phase A and this drain (see
            // `PendingAccess::slot`); the id check guards the impossible.
            let slot = match self.warps.get(pa.slot) {
                Some(w) if w.id == pa.warp_id => Some(pa.slot),
                _ => None,
            };
            // The live-lane mask is invariant across this access's ops:
            // nothing in phase B changes lane population or exit state.
            let live = slot.map_or(0u64, |i| self.warps[i].lanes.live_mask());
            for op in &pa.ops {
                if let Some(v) = fabric.apply(op) {
                    let FunctionalOp::Load { lane, reg, .. } = op else {
                        continue;
                    };
                    // The warp is parked until at least `now + 1`, so this
                    // late register write is indistinguishable from the old
                    // at-issue write — unless the warp died between issue
                    // and phase B (a KillWarp trap this cycle). A result
                    // for a dead warp or an exited lane is dropped
                    // explicitly and counted, never applied blindly.
                    match slot {
                        Some(i) if (live >> *lane) & 1 == 1 => {
                            self.warps[i].lanes.set_reg(*lane, *reg, v);
                        }
                        _ => self.late_write_drops += 1,
                    }
                }
            }
            let mut ready = now + 1;
            for req in &pa.requests {
                ready = ready.max(fabric.service(now, req));
            }
            // L1 bookkeeping (no-ops on the flat machine): this access's
            // serviced requests complete the fills it allocated, and
            // accesses that merged instead wait for the earlier access's
            // fill — which is already stamped, because the allocating
            // access drained earlier in this same issue-ordered queue (or
            // in a previous cycle).
            if !pa.fill_lines.is_empty() {
                self.frontend.mshr_set_fill(&pa.fill_lines, ready);
            }
            if !pa.merge_lines.is_empty() {
                ready = ready.max(self.frontend.mshr_wait_floor(&pa.merge_lines));
            }
            if pa.wait && (!pa.requests.is_empty() || !pa.merge_lines.is_empty()) {
                if let Some(i) = slot {
                    // Push the wake cycle out; the ready-set entry
                    // (bitset or heap) is revalidated lazily.
                    let w = &mut self.warps[i];
                    w.ready_at = w.ready_at.max(ready);
                }
            }
            // Recycle the op buffer for the next access instead of
            // freeing it (bounded pool: one buffer per in-flight access).
            pa.ops.clear();
            if self.op_pool.len() < 16 {
                self.op_pool.push(std::mem::take(&mut pa.ops));
            }
        }
    }

    /// Late load results dropped on dead warps/lanes (see
    /// [`Sm::drain_pending`]); zero on any fault-free run.
    pub fn late_write_drops(&self) -> u64 {
        self.late_write_drops
    }

    /// Drops queued phase-A work without applying it (abort path: SMs past
    /// the faulting one never reached memory in the serial model). MSHR
    /// entries the discarded accesses allocated this cycle would never be
    /// stamped, so they are dropped with the work.
    pub(crate) fn discard_pending(&mut self) {
        self.pending.clear();
        self.frontend.mshr_discard_unresolved();
    }

    /// Phase B, hierarchy machine, pass 1: applies this SM's deferred
    /// functional transfers (exactly like [`Sm::drain_pending`]) and moves
    /// its requests into the chip-wide interconnect `batch`, tagged with
    /// this SM's id and a per-SM access index. The GPU calls this in SM-id
    /// order, so functional application order matches the legacy path and
    /// the batch arrives at [`simt_mem::MemoryFabric::service_batch`]
    /// already sorted by SM.
    pub(crate) fn stage_pending(
        &mut self,
        now: u64,
        fabric: &mut MemoryFabric,
        batch: &mut Vec<BatchRequest>,
    ) {
        debug_assert!(self.staged.is_empty(), "staged accesses left uncommitted");
        for mut pa in self.pending.drain(..) {
            let slot = match self.warps.get(pa.slot) {
                Some(w) if w.id == pa.warp_id => Some(pa.slot),
                _ => None,
            };
            let live = slot.map_or(0u64, |i| self.warps[i].lanes.live_mask());
            for op in &pa.ops {
                if let Some(v) = fabric.apply(op) {
                    let FunctionalOp::Load { lane, reg, .. } = op else {
                        continue;
                    };
                    match slot {
                        Some(i) if (live >> *lane) & 1 == 1 => {
                            self.warps[i].lanes.set_reg(*lane, *reg, v);
                        }
                        _ => self.late_write_drops += 1,
                    }
                }
            }
            pa.ops.clear();
            if self.op_pool.len() < 16 {
                self.op_pool.push(std::mem::take(&mut pa.ops));
            }
            let access = self.staged.len();
            let had_requests = !pa.requests.is_empty();
            for request in pa.requests.drain(..) {
                batch.push(BatchRequest {
                    sm: self.id,
                    access,
                    request,
                });
            }
            self.staged.push(StagedAccess {
                slot,
                wait: pa.wait,
                had_requests,
                fill_lines: std::mem::take(&mut pa.fill_lines),
                merge_lines: std::mem::take(&mut pa.merge_lines),
                ready: now + 1,
            });
        }
    }

    /// Phase B, hierarchy machine, pass 2 (scatter): raises staged access
    /// `access`'s ready floor to one of its requests' arbitrated service
    /// times.
    pub(crate) fn note_access_ready(&mut self, access: usize, ready: u64) {
        let s = &mut self.staged[access];
        s.ready = s.ready.max(ready);
    }

    /// Phase B, hierarchy machine, pass 3: stamps MSHR fills and applies
    /// warp wake-ups from the arbitrated ready times. Fills resolve for
    /// *all* staged accesses before any merge floor is read — a merge
    /// always references an entry allocated by an earlier access, which on
    /// this path may sit later in the same staged queue's fill loop, but
    /// never in a later cycle.
    pub(crate) fn commit_staged(&mut self) {
        for s in &self.staged {
            if !s.fill_lines.is_empty() {
                self.frontend.mshr_set_fill(&s.fill_lines, s.ready);
            }
        }
        for s in &self.staged {
            if !s.wait || (!s.had_requests && s.merge_lines.is_empty()) {
                continue;
            }
            let mut wake = s.ready;
            if !s.merge_lines.is_empty() {
                wake = wake.max(self.frontend.mshr_wait_floor(&s.merge_lines));
            }
            if let Some(i) = s.slot {
                let w = &mut self.warps[i];
                w.ready_at = w.ready_at.max(wake);
            }
        }
        self.staged.clear();
    }

    /// Builds a trap record for warp slot `widx`.
    fn fault(&self, kind: FaultKind, widx: usize, pc: usize, now: u64) -> Fault {
        Fault {
            kind,
            sm: self.id,
            warp: self.warps[widx].id,
            pc,
            cycle: now,
        }
    }

    /// Kills warp `warp_id` after a trap under
    /// [`crate::FaultPolicy::KillWarp`]: its live lanes are discarded
    /// (counted as killed, not retired) and their spawn-memory state
    /// records recycled. The emptied warp is released by the next
    /// [`Sm::reap_finished`] like any finished warp.
    pub(crate) fn kill_warp(&mut self, warp_id: usize) {
        // Cold path (traps only): a linear scan beats maintaining an
        // id→slot map on the hot admission/reap paths.
        let Some(widx) = self.warps.iter().position(|w| w.id == warp_id) else {
            return;
        };
        let mask = self.warps[widx].lanes.live_mask();
        let mut bits = mask;
        while bits != 0 {
            let lane = bits.trailing_zeros() as usize;
            bits &= bits - 1;
            // A lane that already spawned a child has handed its state
            // record to that lineage; only childless lanes give the
            // slot back here.
            if !self.warps[widx].lanes.spawned_child(lane) {
                if let Some(s) = self.warps[widx].lanes.take_state_slot(lane) {
                    self.free_state_slots.push(s);
                }
            }
        }
        self.stats.warps_killed += 1;
        self.stats.threads_killed += u64::from(mask.count_ones());
        self.warps[widx].exit_lanes(mask);
        self.reap_dirty = true;
        self.dispatch_dirty = true;
    }

    /// Snapshot of this SM's warp state for deadlock diagnostics.
    pub(crate) fn snapshot(&mut self) -> SmSnapshot {
        let sm = self.id;
        let free_state_slots = self.free_state_slots.len();
        let fifo_depth = self.formation.as_ref().map_or(0, |f| f.fifo_len());
        let warps = self
            .warps
            .iter_mut()
            .map(|w| WarpSnapshot {
                warp: w.id,
                pc: w.current().map(|e| e.pc),
                live_lanes: w.active_lanes(),
                ready_at: w.ready_at,
                is_dynamic: w.is_dynamic,
            })
            .collect();
        SmSnapshot {
            sm,
            warps,
            free_state_slots,
            fifo_depth,
        }
    }

    #[allow(clippy::too_many_arguments)]
    // Lane expects are backed by the entry mask: only populated lanes are active.
    #[allow(clippy::expect_used)]
    fn exec_warp_instruction(
        &mut self,
        widx: usize,
        pc: usize,
        mask: u64,
        now: u64,
        ctx: &ExecCtx<'_>,
        view: &FabricView,
        injector: Option<&Injector>,
    ) -> Result<(), Fault> {
        // A wild PC (corrupted stack, bad branch surviving KillWarp) traps
        // instead of aborting the host process.
        let Some(&instr) = ctx.program.get(pc) else {
            return Err(self.fault(
                FaultKind::FetchOutOfRange {
                    len: ctx.program.len(),
                },
                widx,
                pc,
                now,
            ));
        };
        // Guard-pass mask over the PDOM-active lanes.
        let lanes = &self.warps[widx].lanes;
        let active = mask & lanes.populated_mask();
        let pass = match instr.guard {
            None => active,
            Some(g) => active & lanes.guard_mask(g.pred, g.negate),
        };

        // A stalled spawn consumes the issue slot without committing.
        if let Instr::Spawn { target, ptr } = instr.op {
            // Dispatch-dirty marking: a spawn changes what dispatch sees
            // only when it *completes* a warp into the formation FIFO
            // (marked below on `warps_completed > 0`). Partial-line growth
            // matters to dispatch only via force-out, which requires every
            // live warp to have exited first — and lane exits mark dirty
            // themselves. Elision and stall outcomes touch no
            // dispatch-visible state at all.
            // §IX optimization: when every live lane of the warp executes
            // this same spawn, branch the warp to the μ-kernel in place
            // instead of creating threads. Each lane's state pointer is
            // still published through a (resident) spawn-memory scratch
            // block so the μ-kernel's restore sequence works unchanged.
            if self.spawn_policy == SpawnPolicy::OnDivergence {
                let live: u64 = self.warps[widx].lanes.live_mask();
                if pass == live && pass != 0 {
                    if self.warps[widx].elision_block.is_none() {
                        self.warps[widx].elision_block =
                            self.formation.as_mut().and_then(|f| f.try_alloc_block());
                    }
                    if let Some(block) = self.warps[widx].elision_block {
                        let spawn_mem = self.spawn_mem.as_mut().expect("dmk enabled");
                        let mut slots = Vec::with_capacity(pass.count_ones() as usize);
                        let mut idx = 0u32;
                        let mut bits = pass;
                        while bits != 0 {
                            let lane = bits.trailing_zeros() as usize;
                            bits &= bits - 1;
                            let slot = block + 4 * idx;
                            idx += 1;
                            let w = &mut self.warps[widx];
                            spawn_mem.write(slot, w.lanes.reg(lane, ptr));
                            w.lanes.set_spawn_mem_addr(lane, slot);
                            slots.push(slot);
                        }
                        let (_, degree) = self.frontend.access_onchip(
                            now,
                            &WarpAccess {
                                space: Space::Spawn,
                                is_store: true,
                                bytes_per_lane: 4,
                                addresses: slots,
                            },
                        );
                        self.block_issue_for_replays(now, degree);
                        self.stats.spawn_elisions += 1;
                        let wid = self.warps[widx].id;
                        self.telemetry.on_spawn_elided(now, wid);
                        self.commit(widx, pc, mask, now, now + 1);
                        self.warps[widx].set_pc(target);
                        return Ok(());
                    }
                    // No scratch block available: fall through to a real
                    // spawn, which applies its own back-pressure.
                }
            }
            let n_active = pass.count_ones();
            // Injected back-pressure: the FIFO or formation area reports
            // full even though it is not, exercising the stall-and-retry
            // recovery path.
            let injected_stall = injector.is_some_and(|i| {
                i.fires(InjectedFault::SpawnFifoFull, now)
                    || i.fires(InjectedFault::FormationFull, now)
            });
            let outcome = if injected_stall {
                self.stats.injected_events += 1;
                Err(SpawnError::FifoFull)
            } else {
                match self.formation.as_mut() {
                    Some(f) => f.spawn(target, n_active),
                    None => return Err(self.fault(FaultKind::SpawnUnsupported, widx, pc, now)),
                }
            };
            match outcome {
                Ok(out) => {
                    if out.warps_completed > 0 {
                        // New FIFO entries: dispatch must get a chance to
                        // admit them (with priority over launch work).
                        self.dispatch_dirty = true;
                    }
                    // Store each spawning lane's state pointer into its
                    // formation slot (the §IV-C memory transaction).
                    let spawn_mem = self.spawn_mem.as_mut().expect("dmk enabled");
                    let mut slot_iter = out.thread_slots.iter();
                    let mut bits = pass;
                    while bits != 0 {
                        let lane = bits.trailing_zeros() as usize;
                        bits &= bits - 1;
                        let slot = *slot_iter.next().expect("one slot per spawning lane");
                        let w = &mut self.warps[widx];
                        spawn_mem.write(slot, w.lanes.reg(lane, ptr));
                        w.lanes.set_spawned_child(lane);
                    }
                    self.stats.threads_spawned += u64::from(n_active);
                    let wid = self.warps[widx].id;
                    self.telemetry.on_spawn(now, wid, target, n_active);
                    // The metadata write is a store: charged, not waited on.
                    let (_, degree) = self.frontend.access_onchip(
                        now,
                        &WarpAccess {
                            space: Space::Spawn,
                            is_store: true,
                            bytes_per_lane: 4,
                            addresses: out.thread_slots,
                        },
                    );
                    self.block_issue_for_replays(now, degree);
                    self.commit(widx, pc, mask, now, now + 1);
                    self.warps[widx].set_pc(pc + 1);
                }
                Err(SpawnError::LutFull) => {
                    // Permanent: no LUT line will ever free up for this
                    // target while the program keeps all lines occupied.
                    let capacity = self.formation.as_ref().map_or(0, |f| f.lut().capacity());
                    return Err(self.fault(
                        FaultKind::LutExhausted {
                            target_pc: target,
                            capacity,
                        },
                        widx,
                        pc,
                        now,
                    ));
                }
                Err(SpawnError::FormationFull) | Err(SpawnError::FifoFull) => {
                    // Transient back-pressure: retry shortly, no commit.
                    self.stats.spawn_stall_cycles += 1;
                    let wid = self.warps[widx].id;
                    self.telemetry.on_spawn_stall(now, wid);
                    self.warps[widx].ready_at = now + 4;
                    self.ready.park(widx, now + 4);
                }
            }
            return Ok(());
        }

        match instr.op {
            Instr::Alu { op, d, a, b, c } => {
                let mut latency = 1;
                if matches!(
                    op,
                    simt_isa::AluOp::FDiv
                        | simt_isa::AluOp::FSqrt
                        | simt_isa::AluOp::FRcp
                        | simt_isa::AluOp::IDiv
                        | simt_isa::AluOp::IRem
                ) {
                    latency = self.long_op_latency;
                }
                self.warps[widx].lanes.alu_warp(pass, op, d, a, b, c);
                self.commit(widx, pc, mask, now, now + u64::from(latency));
                self.warps[widx].set_pc(pc + 1);
            }
            Instr::Setp { cmp, p, a, b } => {
                self.warps[widx].lanes.setp_warp(pass, cmp, p, a, b);
                self.commit(widx, pc, mask, now, now + 1);
                self.warps[widx].set_pc(pc + 1);
            }
            Instr::Selp { d, a, b, p } => {
                self.warps[widx].lanes.selp_warp(pass, d, a, b, p);
                self.commit(widx, pc, mask, now, now + 1);
                self.warps[widx].set_pc(pc + 1);
            }
            Instr::Mov { d, a } => {
                self.warps[widx].lanes.mov_warp(pass, d, a);
                self.commit(widx, pc, mask, now, now + 1);
                self.warps[widx].set_pc(pc + 1);
            }
            Instr::ReadSpecial { d, s } => {
                let (sm_id, ntid) = (self.id as u32, ctx.ntid);
                let wid = self.warps[widx].id as u32;
                self.warps[widx]
                    .lanes
                    .special_warp(pass, d, s, wid, sm_id, ntid);
                self.commit(widx, pc, mask, now, now + 1);
                self.warps[widx].set_pc(pc + 1);
            }
            Instr::Nop => {
                self.commit(widx, pc, mask, now, now + 1);
                self.warps[widx].set_pc(pc + 1);
            }
            Instr::Ld {
                space,
                d,
                addr,
                offset,
                width,
            } => {
                let ready = self
                    .exec_memory(widx, pass, space, d, addr, offset, width, false, now, view)
                    .map_err(|m| self.fault(FaultKind::Memory(m), widx, pc, now))?;
                self.commit(widx, pc, mask, now, ready);
                self.warps[widx].set_pc(pc + 1);
            }
            Instr::St {
                space,
                a,
                addr,
                offset,
                width,
            } => {
                // Stores are fire-and-forget: bandwidth/queueing is charged
                // by the timing model, but the warp does not wait for the
                // write to land.
                self.exec_memory(widx, pass, space, a, addr, offset, width, true, now, view)
                    .map_err(|m| self.fault(FaultKind::Memory(m), widx, pc, now))?;
                self.commit(widx, pc, mask, now, now + 1);
                self.warps[widx].set_pc(pc + 1);
            }
            Instr::Bra { target } => {
                let taken = pass;
                let not_taken = mask & !pass;
                self.commit(widx, pc, mask, now, now + 1);
                let w = &mut self.warps[widx];
                if not_taken == 0 {
                    w.set_pc(target);
                } else if taken == 0 {
                    w.set_pc(pc + 1);
                } else {
                    let rpc = ctx.rtab.reconvergence_pc(pc);
                    w.diverge(taken, not_taken, target, pc + 1, rpc);
                }
            }
            Instr::Exit => {
                self.commit(widx, pc, mask, now, now + 1);
                // Advance the entry first so non-exiting lanes continue.
                self.warps[widx].set_pc(pc + 1);
                self.retire_lanes(widx, pass);
            }
            Instr::Spawn { .. } => unreachable!("handled above"),
        }
        Ok(())
    }

    /// Marks lanes retired, updating lineage accounting and recycling
    /// spawn-memory state slots.
    fn retire_lanes(&mut self, widx: usize, lanes: u64) {
        self.reap_dirty = true;
        // Exits change the live-warp census the end-of-application
        // force-out condition reads.
        self.dispatch_dirty = true;
        let mut bits = lanes & self.warps[widx].lanes.populated_mask();
        while bits != 0 {
            let lane = bits.trailing_zeros() as usize;
            bits &= bits - 1;
            self.stats.threads_retired += 1;
            let w = &mut self.warps[widx];
            if !w.lanes.spawned_child(lane) {
                self.stats.lineages_completed += 1;
                if let Some(slot) = w.lanes.take_state_slot(lane) {
                    self.free_state_slots.push(slot);
                }
            }
        }
        self.warps[widx].exit_lanes(lanes);
    }

    /// Executes one warp memory instruction in phase A. On-chip accesses
    /// (shared/spawn) transfer immediately — their backing is SM-private.
    /// Off-chip accesses are *validated* against the fabric view, then
    /// deferred as functional ops + coalesced module requests for phase B;
    /// the returned data-ready cycle is a floor that phase B may raise.
    ///
    /// On a fault, lanes already validated keep their effects (imprecise
    /// trap): their ops are flushed to the pending queue without a timing
    /// request, exactly as the serial model left partial transfers applied.
    #[allow(clippy::too_many_arguments)]
    // Lane expects are backed by the caller passing live-lane masks only.
    #[allow(clippy::expect_used)]
    fn exec_memory(
        &mut self,
        widx: usize,
        pass: u64,
        space: Space,
        reg: simt_isa::Reg,
        addr_reg: simt_isa::Reg,
        offset: i32,
        width: Width,
        is_store: bool,
        now: u64,
        view: &FabricView,
    ) -> Result<u64, MemFault> {
        let nwords = width.regs() as u32;
        let warp_id = self.warps[widx].id;
        let mut addresses = std::mem::take(&mut self.addr_scratch);
        addresses.clear();
        addresses.reserve(pass.count_ones() as usize);

        if space.is_on_chip() {
            // On-chip spaces wrap modulo capacity like the banked hardware,
            // but misalignment is still a trap, and a spawn-space access
            // without μ-kernel hardware has no backing at all. Both checks
            // hoist out of the word loop: every word of a stride-4 span
            // shares the base's alignment (so word 0 is always the first
            // misaligned word), and the spawn backing cannot change
            // mid-instruction — so once lane checks pass, no word of that
            // lane can fault, exactly like the per-word order.
            let spawn_unbacked = space == Space::Spawn && self.spawn_mem.is_none();
            let Sm {
                warps,
                shared,
                spawn_mem,
                ..
            } = self;
            let lanes = &mut warps[widx].lanes;
            let mut bits = pass;
            while bits != 0 {
                let lane = bits.trailing_zeros() as usize;
                bits &= bits - 1;
                let base = lanes.reg(lane, addr_reg).wrapping_add(offset as u32);
                if !base.is_multiple_of(4) {
                    return Err(MemFault::Misaligned { space, addr: base });
                }
                if spawn_unbacked {
                    return Err(MemFault::Unmapped { space });
                }
                if is_store {
                    for i in 0..nwords {
                        let v = lanes.reg(lane, simt_isa::Reg(reg.0 + i as u8));
                        match space {
                            Space::Shared => shared.write(base + 4 * i, v),
                            _ => spawn_mem.as_mut().expect("checked").write(base + 4 * i, v),
                        }
                    }
                } else {
                    for i in 0..nwords {
                        let v = match space {
                            Space::Shared => shared.read(base + 4 * i),
                            _ => spawn_mem.as_ref().expect("checked").read(base + 4 * i),
                        };
                        lanes.set_reg(lane, simt_isa::Reg(reg.0 + i as u8), v);
                    }
                }
                addresses.push(base);
            }
            // A dynamic warp's first spawn-space load consumes its
            // formation metadata; the block can be recycled afterwards.
            if space == Space::Spawn && !is_store {
                if let Some(base) = self.warps[widx].formation_block.take() {
                    if let Some(f) = self.formation.as_mut() {
                        f.release_block(base);
                        self.dispatch_dirty = true;
                    }
                }
            }
            let req = WarpAccess {
                space,
                is_store,
                bytes_per_lane: width.bytes(),
                addresses,
            };
            let (ready, degree) = self.frontend.access_onchip(now, &req);
            self.block_issue_for_replays(now, degree);
            self.addr_scratch = req.addresses;
            return Ok(ready);
        }

        // Off-chip: validate word by word in lane order (mirroring the
        // order the serial model performed the transfers in), capturing
        // deferred ops. Store values are read from the register file *now*,
        // at issue, so phase B applies exactly what the lane held.
        let mut ops: Vec<FunctionalOp> = self.op_pool.pop().unwrap_or_default();
        let mut bits = pass;
        while bits != 0 {
            let lane = bits.trailing_zeros() as usize;
            bits &= bits - 1;
            let (tid, base) = {
                let lanes = &self.warps[widx].lanes;
                (
                    lanes.tid(lane),
                    lanes.reg(lane, addr_reg).wrapping_add(offset as u32),
                )
            };
            for i in 0..nwords {
                let a = base + 4 * i;
                let r = simt_isa::Reg(reg.0 + i as u8);
                let checked = if is_store {
                    view.check_store(space, a)
                } else {
                    view.check_load(space, a)
                };
                if let Err(fault) = checked {
                    if !ops.is_empty() {
                        self.pending.push(PendingAccess {
                            warp_id,
                            slot: widx,
                            wait: false,
                            ops,
                            requests: Vec::new(),
                            fill_lines: Vec::new(),
                            merge_lines: Vec::new(),
                        });
                    }
                    return Err(fault);
                }
                if is_store {
                    let v = self.warps[widx].lanes.reg(lane, r);
                    ops.push(FunctionalOp::Store {
                        space,
                        tid,
                        addr: a,
                        value: v,
                    });
                } else {
                    ops.push(FunctionalOp::Load {
                        space,
                        tid,
                        addr: a,
                        lane,
                        reg: r,
                    });
                }
            }
            // Timing address: local uses the per-thread physical mapping.
            let timing_addr = if space == Space::Local {
                view.local_physical(tid, base)
            } else {
                base
            };
            addresses.push(timing_addr);
        }
        // Texture-bound global loads go through the per-SM read-only cache.
        if !is_store && space == Space::Global && !view.config().ideal && self.frontend.has_tex() {
            let mut cached = std::mem::take(&mut self.tex_cached);
            let mut uncached = std::mem::take(&mut self.tex_uncached);
            cached.clear();
            uncached.clear();
            for &a in &addresses {
                if view.is_read_only(a) {
                    cached.push(a);
                } else {
                    uncached.push(a);
                }
            }
            let miss_lines = self.frontend.tex_probe(&cached, width.bytes());
            let line = view.config().tex_line_bytes;
            let mut ready = now + u64::from(view.config().tex_hit_latency);
            let mut requests = Vec::new();
            let mut fill_lines = Vec::new();
            let mut merge_lines = Vec::new();
            if !miss_lines.is_empty() {
                // Texture fills skip the L1 (separate tag array on the real
                // chip); they still cross the interconnect/L2 in phase B.
                let (floor, req) =
                    self.frontend
                        .request_offchip(now, Space::Global, false, line, &miss_lines);
                ready = ready.max(floor);
                requests.extend(req);
            }
            if !uncached.is_empty() {
                if view.config().l1_enabled() {
                    let (floor, req, fills, merges, probe) =
                        self.frontend.l1_request(now, width.bytes(), &uncached);
                    ready = ready.max(floor);
                    requests.extend(req);
                    fill_lines = fills;
                    merge_lines = merges;
                    if self.telemetry.is_on() {
                        self.telemetry.on_l1(now, warp_id, &probe);
                    }
                } else {
                    let (floor, req) = self.frontend.request_offchip(
                        now,
                        Space::Global,
                        false,
                        width.bytes(),
                        &uncached,
                    );
                    ready = ready.max(floor);
                    requests.extend(req);
                }
            }
            if self.telemetry.is_on() {
                if !cached.is_empty() {
                    self.telemetry.on_tex(
                        now,
                        warp_id,
                        cached.len() as u32,
                        miss_lines.len() as u32,
                    );
                }
                if !requests.is_empty() {
                    let segments = requests.iter().map(|r| r.segments.len() as u32).sum();
                    self.telemetry
                        .on_offchip(now, warp_id, addresses.len() as u32, segments);
                }
            }
            if !ops.is_empty() || !requests.is_empty() || !merge_lines.is_empty() {
                self.pending.push(PendingAccess {
                    warp_id,
                    slot: widx,
                    wait: true,
                    ops,
                    requests,
                    fill_lines,
                    merge_lines,
                });
            } else {
                self.op_pool.push(ops);
            }
            self.tex_cached = cached;
            self.tex_uncached = uncached;
            self.addr_scratch = addresses;
            return Ok(ready);
        }

        // Global loads go through the L1 when modeled; stores write
        // through without allocating, and local/const keep the flat path
        // (one tag array cannot alias local-physical and global
        // addresses).
        let (ready, requests, fill_lines, merge_lines) =
            if !is_store && space == Space::Global && view.config().l1_enabled() {
                let (ready, req, fills, merges, probe) =
                    self.frontend.l1_request(now, width.bytes(), &addresses);
                if self.telemetry.is_on() {
                    self.telemetry.on_l1(now, warp_id, &probe);
                }
                (ready, req.into_iter().collect::<Vec<_>>(), fills, merges)
            } else {
                let (ready, req) =
                    self.frontend
                        .request_offchip(now, space, is_store, width.bytes(), &addresses);
                (
                    ready,
                    req.into_iter().collect::<Vec<_>>(),
                    Vec::new(),
                    Vec::new(),
                )
            };
        if self.telemetry.is_on() && !requests.is_empty() {
            let segments = requests.iter().map(|r| r.segments.len() as u32).sum();
            self.telemetry
                .on_offchip(now, warp_id, addresses.len() as u32, segments);
        }
        if !ops.is_empty() || !requests.is_empty() || !merge_lines.is_empty() {
            self.pending.push(PendingAccess {
                warp_id,
                slot: widx,
                wait: !is_store,
                ops,
                requests,
                fill_lines,
                merge_lines,
            });
        } else {
            self.op_pool.push(ops);
        }
        self.addr_scratch = addresses;
        Ok(ready)
    }

    /// Bank-conflict replays steal issue slots: a degree-`d` access
    /// re-issues `d - 1` times, blocking the SM's issue port meanwhile.
    fn block_issue_for_replays(&mut self, now: u64, degree: u32) {
        if degree > 1 {
            let start = now.max(self.issue_blocked_until);
            self.issue_blocked_until = start + u64::from(degree - 1);
        }
    }

    /// Records statistics for one committed warp-instruction.
    fn commit(&mut self, widx: usize, pc: usize, mask: u64, now: u64, ready: u64) {
        let active = mask.count_ones();
        self.stats.warp_issues += 1;
        self.stats.thread_instructions += u64::from(active);
        self.stats.divergence.record_issue(now, active);
        if self.telemetry.is_on() {
            let wid = self.warps[widx].id;
            let depth = self.warps[widx].stack_depth() as u32;
            self.telemetry.on_issue(now, wid, pc, active, depth);
        }
        let w = &mut self.warps[widx];
        w.ready_at = ready.max(now + 1);
        w.lanes.add_instruction(mask);
        let until = w.ready_at;
        // Back-to-back ready (the common case): the warp is already in
        // the ready bitset — leave it there instead of a heap round-trip.
        // `Sm::step` revalidates `ready_at` before issuing, so a phase-B
        // wake-up pushed past `now + 1` still parks the warp lazily.
        if until > now + 1 {
            self.ready.park(widx, until);
        }
    }

    /// Serializes this SM's complete mutable state for a simulator
    /// checkpoint. Must only be called at the inter-cycle barrier, where
    /// the phase-A pending queue is drained (it is every cycle).
    pub(crate) fn encode_state(&self, enc: &mut Encoder) {
        debug_assert!(
            self.pending.is_empty() && self.staged.is_empty(),
            "checkpoint only at the cycle barrier"
        );
        enc.put_usize(self.warps.len());
        for w in &self.warps {
            w.encode_state(enc);
        }
        enc.put_usize(self.next_warp_id);
        enc.put_usize(self.rr);
        self.shared.encode_state(enc);
        enc.put_bool(self.spawn_mem.is_some());
        if let Some(m) = &self.spawn_mem {
            m.encode_state(enc);
        }
        enc.put_bool(self.formation.is_some());
        if let Some(f) = &self.formation {
            f.encode_state(enc);
        }
        enc.put_u32(self.threads_used);
        enc.put_u32(self.regs_used);
        let mut blocks: Vec<(usize, u32)> = self.blocks.iter().map(|(&b, &n)| (b, n)).collect();
        blocks.sort_unstable();
        enc.put_usize(blocks.len());
        for (b, n) in blocks {
            enc.put_usize(b);
            enc.put_u32(n);
        }
        enc.put_u32_slice(&self.free_state_slots);
        self.frontend.encode_state(enc);
        enc.put_u64(self.issue_blocked_until);
        self.stats.encode_state(enc);
        self.telemetry.encode_state(enc);
    }

    /// Restores state written by [`Sm::encode_state`] into an SM freshly
    /// built with [`Sm::new`] from the same configuration.
    pub(crate) fn restore_state(&mut self, dec: &mut Decoder<'_>) -> Result<(), CodecError> {
        let n = dec.take_len(30)?;
        self.warps = (0..n)
            .map(|_| Warp::restore_state(dec))
            .collect::<Result<_, CodecError>>()?;
        self.next_warp_id = dec.take_usize()?;
        self.rr = dec.take_usize()?;
        self.shared.restore_state(dec)?;
        let has_spawn_mem = dec.take_bool()?;
        if has_spawn_mem != self.spawn_mem.is_some() {
            return Err(CodecError::BadTag {
                what: "spawn memory presence",
                tag: has_spawn_mem as u64,
            });
        }
        if let Some(m) = self.spawn_mem.as_mut() {
            m.restore_state(dec)?;
        }
        let has_formation = dec.take_bool()?;
        if has_formation != self.formation.is_some() {
            return Err(CodecError::BadTag {
                what: "formation unit presence",
                tag: has_formation as u64,
            });
        }
        if let Some(f) = self.formation.as_mut() {
            f.restore_state(dec)?;
        }
        self.threads_used = dec.take_u32()?;
        self.regs_used = dec.take_u32()?;
        let nb = dec.take_len(12)?;
        self.blocks = (0..nb)
            .map(|_| Ok((dec.take_usize()?, dec.take_u32()?)))
            .collect::<Result<_, CodecError>>()?;
        self.free_state_slots = dec.take_u32_vec()?;
        self.frontend.restore_state(dec)?;
        self.issue_blocked_until = dec.take_u64()?;
        self.stats.restore_state(dec)?;
        self.telemetry.restore_state(dec)?;
        self.pending.clear();
        self.staged.clear();
        // Derived issue-stage structures are rebuilt, not stored: a warp
        // parked at cycle 0 wakes on the first post-restore step anyway.
        let warps = &self.warps;
        self.ready
            .rebuild(0, warps.iter().enumerate().map(|(i, w)| (i, w.ready_at)));
        self.late_write_drops = 0;
        // Conservative: force one reap scan after restore rather than
        // prove no restored warp is already finished.
        self.reap_dirty = true;
        self.dispatch_dirty = true;
        Ok(())
    }

    /// Test/diagnostic access to shared memory contents.
    pub fn shared_mem(&self) -> &OnChipMemory {
        &self.shared
    }

    /// Test/diagnostic access to spawn memory contents.
    pub fn spawn_mem(&self) -> Option<&OnChipMemory> {
        self.spawn_mem.as_ref()
    }
}
