//! One streaming multiprocessor: warp pool, issue logic, PDOM branching,
//! the spawn datapath, and per-SM resource accounting.

use crate::config::{GpuConfig, SpawnPolicy};
use crate::fault::{Fault, FaultKind, InjectedFault, Injector, SmSnapshot, WarpSnapshot};
use crate::stats::SimStats;
use crate::telemetry::{SmTelemetry, TelemetrySpec};
use crate::thread::ThreadCtx;
use crate::warp::Warp;
use dmk_core::{CompletedWarp, SpawnError, SpawnMemoryLayout, WarpFormation};
use simt_isa::codec::{CodecError, Decoder, Encoder};
use simt_isa::{Instr, Program, ReconvergenceTable, Space, Width};
use simt_mem::{
    FabricView, FunctionalOp, MemFault, MemoryFabric, OnChipMemory, PendingAccess, SmMemFrontend,
    TrafficStats, WarpAccess,
};
use std::collections::HashMap;

/// Execution context shared by all SMs for the current launch.
#[derive(Debug)]
pub(crate) struct ExecCtx<'a> {
    pub program: &'a Program,
    pub rtab: &'a ReconvergenceTable,
    /// Registers per thread charged against the SM register file. Per the
    /// paper (§IV-D) dynamic warps are charged the *maximum* across
    /// μ-kernels, which for a single combined program is its register count.
    pub regs_per_thread: u32,
    /// Total launch threads (`%ntid`).
    pub ntid: u32,
}

/// One streaming multiprocessor.
#[derive(Debug)]
pub struct Sm {
    id: usize,
    warp_size: u32,
    max_threads: u32,
    max_blocks: u32,
    max_regs: u32,
    long_op_latency: u32,
    warps: Vec<Warp>,
    next_warp_id: usize,
    rr: usize,
    shared: OnChipMemory,
    spawn_mem: Option<OnChipMemory>,
    formation: Option<WarpFormation>,
    threads_used: u32,
    regs_used: u32,
    /// Live warps per resident block (block scheduling).
    blocks: HashMap<usize, u32>,
    /// Free spawn-memory state records (dmk only).
    free_state_slots: Vec<u32>,
    /// Per-SM memory frontend: coalescer, read-only (texture) cache,
    /// on-chip load-store port, and this SM's traffic shard.
    frontend: SmMemFrontend,
    spawn_policy: SpawnPolicy,
    /// Cycle until which the issue port is blocked by bank-conflict
    /// instruction replays (GT200-style: a conflicting access re-issues
    /// once per extra pass, stealing issue slots from every warp).
    issue_blocked_until: u64,
    /// This SM's statistics shard. Phase A runs SMs on separate threads,
    /// so counters accumulate here and are merged by the GPU at run end.
    stats: SimStats,
    /// Off-chip work emitted during phase A, drained by the GPU against
    /// the shared fabric in SM-id order during phase B.
    pending: Vec<PendingAccess>,
    /// This SM's telemetry shard, written like `stats` during phase A and
    /// merged by the GPU in SM-id order (see [`crate::telemetry`]).
    telemetry: SmTelemetry,
}

impl Sm {
    /// Creates an SM for the given machine configuration.
    pub fn new(id: usize, cfg: &GpuConfig) -> Self {
        let (spawn_mem, formation, free_state_slots) = match &cfg.dmk {
            Some(d) => {
                let layout = SpawnMemoryLayout::new(d);
                let mem = OnChipMemory::new(layout.total_bytes(), cfg.mem.shared_banks);
                let slots = (0..d.threads_per_sm)
                    .rev()
                    .map(|i| layout.launch_state_addr(i))
                    .collect();
                (Some(mem), Some(WarpFormation::new(d)), slots)
            }
            None => (None, None, Vec::new()),
        };
        Sm {
            id,
            warp_size: cfg.warp_size,
            max_threads: cfg.max_threads_per_sm,
            max_blocks: cfg.max_blocks_per_sm,
            max_regs: cfg.registers_per_sm,
            long_op_latency: cfg.long_op_latency,
            warps: Vec::new(),
            next_warp_id: 0,
            rr: 0,
            shared: OnChipMemory::new(cfg.shared_mem_per_sm, cfg.mem.shared_banks),
            spawn_mem,
            formation,
            threads_used: 0,
            regs_used: 0,
            blocks: HashMap::new(),
            free_state_slots,
            frontend: SmMemFrontend::new(cfg.mem.clone()),
            spawn_policy: cfg.spawn_policy,
            issue_blocked_until: 0,
            stats: SimStats::new(cfg.divergence_window, cfg.warp_size),
            pending: Vec::new(),
            telemetry: SmTelemetry::new(
                id,
                &TelemetrySpec::off(),
                cfg.divergence_window,
                cfg.warp_size,
            ),
        }
    }

    /// Replaces this SM's telemetry shard with a fresh one configured by
    /// `spec` (recordings restart from zero).
    pub(crate) fn set_telemetry(
        &mut self,
        spec: &TelemetrySpec,
        divergence_window: u64,
        warp_size: u32,
    ) {
        self.telemetry = SmTelemetry::new(self.id, spec, divergence_window, warp_size);
    }

    /// This SM's telemetry shard.
    pub(crate) fn telemetry(&self) -> &SmTelemetry {
        &self.telemetry
    }

    /// Texture-cache (hits, misses) so far, if a cache is configured.
    pub fn tex_stats(&self) -> Option<(u64, u64)> {
        self.frontend.tex_stats()
    }

    /// This SM's statistics shard (counters since the last merge).
    pub fn stats(&self) -> &SimStats {
        &self.stats
    }

    /// Takes this SM's statistics shard, leaving `fresh` (a zeroed shard
    /// with the right divergence geometry) in its place.
    pub(crate) fn take_stats(&mut self, fresh: SimStats) -> SimStats {
        std::mem::replace(&mut self.stats, fresh)
    }

    /// This SM's traffic shard (cumulative across runs).
    pub fn traffic(&self) -> &TrafficStats {
        self.frontend.traffic()
    }

    /// SM index.
    pub fn id(&self) -> usize {
        self.id
    }

    /// Resident warps.
    pub fn warp_count(&self) -> usize {
        self.warps.len()
    }

    /// Resident threads.
    pub fn threads_used(&self) -> u32 {
        self.threads_used
    }

    /// The warp-formation unit, if dynamic μ-kernels are enabled.
    pub fn formation(&self) -> Option<&WarpFormation> {
        self.formation.as_ref()
    }

    /// Whether a warp of `threads` lanes fits the SM right now.
    pub fn fits_warp(&self, threads: u32, regs_per_thread: u32, needs_state_slots: bool) -> bool {
        if self.threads_used + threads > self.max_threads {
            return false;
        }
        if self.regs_used + threads * regs_per_thread > self.max_regs {
            return false;
        }
        if needs_state_slots
            && self.formation.is_some()
            && (self.free_state_slots.len() as u32) < threads
        {
            return false;
        }
        true
    }

    /// Whether a whole block of `block_threads` fits (block scheduling).
    pub fn fits_block(
        &self,
        block_threads: u32,
        regs_per_thread: u32,
        needs_state_slots: bool,
    ) -> bool {
        if self.blocks.len() as u32 >= self.max_blocks {
            return false;
        }
        if self.threads_used + block_threads > self.max_threads {
            return false;
        }
        if self.regs_used + block_threads * regs_per_thread > self.max_regs {
            return false;
        }
        if needs_state_slots
            && self.formation.is_some()
            && (self.free_state_slots.len() as u32) < block_threads
        {
            return false;
        }
        true
    }

    /// Admits a launch-time warp whose threads have ids `tids`, starting at
    /// `entry_pc`.
    ///
    /// # Panics
    ///
    /// Panics if resources were not checked first.
    // Expects are backed by the fits_warp assertion at function entry.
    #[allow(clippy::expect_used)]
    pub(crate) fn admit_launch_warp(
        &mut self,
        tids: &[u32],
        entry_pc: usize,
        block_id: Option<usize>,
        now: u64,
        ctx: &ExecCtx<'_>,
    ) {
        assert!(self.fits_warp(tids.len() as u32, ctx.regs_per_thread, true));
        let mut threads = Vec::with_capacity(tids.len());
        for &tid in tids {
            let mut t = ThreadCtx::new(tid, ctx.regs_per_thread);
            if self.formation.is_some() {
                let slot = self
                    .free_state_slots
                    .pop()
                    .expect("state slots checked in fits_warp");
                // Launch threads address their state record directly
                // (paper §IV-A1).
                t.spawn_mem_addr = slot;
                t.state_slot = Some(slot);
            }
            threads.push(t);
        }
        let n = threads.len() as u32;
        let wid = self.next_warp_id;
        let mut w = Warp::new(wid, self.warp_size, entry_pc, threads);
        self.next_warp_id += 1;
        w.block_id = block_id;
        if let Some(b) = block_id {
            *self.blocks.entry(b).or_insert(0) += 1;
        }
        self.threads_used += n;
        self.regs_used += n * ctx.regs_per_thread;
        self.stats.threads_launched += u64::from(n);
        self.telemetry.on_warp_birth(now, wid, false, n);
        self.warps.push(w);
    }

    /// Admits a dynamically created warp popped from the new-warp FIFO.
    ///
    /// Reads each lane's state pointer from the formation block (hardware:
    /// computed from the LUT address minus the lane id, §IV-D) and sets
    /// `%spawnmem` to the lane's formation-slot address (Fig. 6).
    ///
    /// # Panics
    ///
    /// Panics if resources were not checked first or DMK is disabled.
    // Expects are backed by the fits_warp assertion and the DMK-only call sites.
    #[allow(clippy::expect_used)]
    pub(crate) fn admit_dynamic_warp(
        &mut self,
        cw: CompletedWarp,
        next_tid: &mut u32,
        now: u64,
        ctx: &ExecCtx<'_>,
    ) {
        assert!(self.fits_warp(cw.count, ctx.regs_per_thread, false));
        let spawn_mem = self.spawn_mem.as_ref().expect("dmk enabled");
        let mut threads = Vec::with_capacity(cw.count as usize);
        for lane in 0..cw.count {
            let slot_addr = cw.base_addr + 4 * lane;
            let state_ptr = spawn_mem.read(slot_addr);
            let mut t = ThreadCtx::new(*next_tid, ctx.regs_per_thread);
            *next_tid += 1;
            t.spawn_mem_addr = slot_addr;
            t.state_slot = Some(state_ptr);
            threads.push(t);
        }
        let n = cw.count;
        let wid = self.next_warp_id;
        let mut w = Warp::new(wid, self.warp_size, cw.pc, threads);
        self.next_warp_id += 1;
        w.is_dynamic = true;
        w.formation_block = Some(cw.base_addr);
        self.threads_used += n;
        self.regs_used += n * ctx.regs_per_thread;
        self.telemetry.on_warp_birth(now, wid, true, n);
        self.warps.push(w);
    }

    /// Pops finished warps, releasing their resources. Returns the number
    /// of warps retired.
    // Block bookkeeping is kept in lockstep with warp admission.
    #[allow(clippy::expect_used)]
    pub(crate) fn reap_finished(&mut self, now: u64, ctx: &ExecCtx<'_>) -> usize {
        let mut reaped = 0;
        let mut i = 0;
        while i < self.warps.len() {
            if self.warps[i].is_finished() {
                let w = self.warps.remove(i);
                self.telemetry.on_warp_retire(now, w.id);
                let n = w.population();
                self.threads_used -= n;
                self.regs_used -= n * ctx.regs_per_thread;
                if let Some(b) = w.block_id {
                    let left = self.blocks.get_mut(&b).expect("block tracked");
                    *left -= 1;
                    if *left == 0 {
                        self.blocks.remove(&b);
                    }
                }
                if let (Some(base), Some(f)) = (w.formation_block, self.formation.as_mut()) {
                    f.release_block(base);
                }
                if let (Some(base), Some(f)) = (w.elision_block, self.formation.as_mut()) {
                    f.release_block(base);
                }
                reaped += 1;
            } else {
                i += 1;
            }
        }
        if self.rr >= self.warps.len() {
            self.rr = 0;
        }
        reaped
    }

    /// Whether any resident warp still has lanes to run.
    pub(crate) fn has_live_warps(&mut self) -> bool {
        self.warps.iter_mut().any(|w| !w.is_finished())
    }

    /// Drains ready dynamic warps from the FIFO into the warp pool, with
    /// priority over launch work (paper §IV-D). Returns warps admitted.
    pub(crate) fn drain_dynamic(
        &mut self,
        next_tid: &mut u32,
        now: u64,
        ctx: &ExecCtx<'_>,
    ) -> usize {
        let mut admitted = 0;
        while let Some(cw) = self
            .formation
            .as_ref()
            .and_then(|f| f.peek_ready().copied())
        {
            if !self.fits_warp(cw.count, ctx.regs_per_thread, false) {
                break;
            }
            if let Some(f) = self.formation.as_mut() {
                f.pop_ready();
            }
            self.admit_dynamic_warp(cw, next_tid, now, ctx);
            admitted += 1;
        }
        admitted
    }

    /// Forces partial warps out of the formation pool when nothing else is
    /// schedulable (paper §IV-D). Returns warps admitted.
    pub(crate) fn force_out_partials(
        &mut self,
        next_tid: &mut u32,
        now: u64,
        ctx: &ExecCtx<'_>,
    ) -> usize {
        let mut admitted = 0;
        loop {
            // Peek the candidate size via the LUT before committing.
            let count = self.formation.as_ref().map_or(0, |f| {
                if f.partial_threads() == 0 {
                    0
                } else {
                    f.lut().partial_lines().first().map_or(0, |l| l.count)
                }
            });
            if count == 0 || !self.fits_warp(count, ctx.regs_per_thread, false) {
                break;
            }
            let Some(cw) = self
                .formation
                .as_mut()
                .and_then(WarpFormation::force_out_partial)
            else {
                break;
            };
            self.admit_dynamic_warp(cw, next_tid, now, ctx);
            admitted += 1;
        }
        admitted
    }

    /// Phase A: issues at most one warp-instruction against this SM's
    /// private state, deferring off-chip work into the pending queue.
    /// Returns `Ok(true)` if something issued (or productively stalled),
    /// `Ok(false)` on an idle cycle, and `Err` when the issuing warp
    /// trapped (the caller applies the configured [`crate::FaultPolicy`]).
    ///
    /// Takes only `&FabricView` — no shared mutable state — so the GPU may
    /// run this concurrently for different SMs with bit-identical results.
    pub(crate) fn step(
        &mut self,
        now: u64,
        ctx: &ExecCtx<'_>,
        view: &FabricView,
        injector: Option<&Injector>,
    ) -> Result<bool, Fault> {
        if now < self.issue_blocked_until {
            // Issue port consumed by bank-conflict replays.
            self.stats.idle_sm_cycles += 1;
            self.stats.divergence.record_idle(now);
            self.telemetry.on_idle(now);
            return Ok(false);
        }
        let n = self.warps.len();
        if n == 0 {
            self.stats.idle_sm_cycles += 1;
            self.stats.divergence.record_idle(now);
            self.telemetry.on_idle(now);
            return Ok(false);
        }
        for k in 0..n {
            let idx = (self.rr + k) % n;
            if self.warps[idx].ready_at > now {
                continue;
            }
            let Some(entry) = self.warps[idx].current() else {
                continue;
            };
            self.rr = (idx + 1) % n;
            if let Some(inj) = injector {
                if inj.fires(InjectedFault::Trap, now) {
                    self.stats.injected_events += 1;
                    return Err(self.fault(FaultKind::Injected, idx, entry.pc, now));
                }
            }
            self.exec_warp_instruction(idx, entry.pc, entry.mask, now, ctx, view, injector)?;
            return Ok(true);
        }
        self.stats.idle_sm_cycles += 1;
        self.stats.divergence.record_idle(now);
        self.telemetry.on_idle(now);
        Ok(false)
    }

    /// Phase B: applies this SM's deferred functional transfers and services
    /// its module requests against the shared fabric. The GPU calls this
    /// serially in SM-id order, which reproduces exactly the memory
    /// interleaving of the old fully-serial cycle loop.
    pub(crate) fn drain_pending(&mut self, now: u64, fabric: &mut MemoryFabric) {
        for pa in self.pending.drain(..) {
            for op in &pa.ops {
                if let Some(v) = fabric.apply(op) {
                    let FunctionalOp::Load { lane, reg, .. } = op else {
                        continue;
                    };
                    // The warp is parked until at least `now + 1`, so this
                    // late register write is indistinguishable from the old
                    // at-issue write.
                    if let Some(w) = self.warps.iter_mut().find(|w| w.id == pa.warp_id) {
                        if let Some(t) = w.lanes[*lane].as_mut() {
                            t.set_reg(*reg, v);
                        }
                    }
                }
            }
            let mut ready = now + 1;
            for req in &pa.requests {
                ready = ready.max(fabric.service(now, req));
            }
            if pa.wait && !pa.requests.is_empty() {
                if let Some(w) = self.warps.iter_mut().find(|w| w.id == pa.warp_id) {
                    w.ready_at = w.ready_at.max(ready);
                }
            }
        }
    }

    /// Drops queued phase-A work without applying it (abort path: SMs past
    /// the faulting one never reached memory in the serial model).
    pub(crate) fn discard_pending(&mut self) {
        self.pending.clear();
    }

    /// Builds a trap record for warp slot `widx`.
    fn fault(&self, kind: FaultKind, widx: usize, pc: usize, now: u64) -> Fault {
        Fault {
            kind,
            sm: self.id,
            warp: self.warps[widx].id,
            pc,
            cycle: now,
        }
    }

    /// Kills warp `warp_id` after a trap under
    /// [`crate::FaultPolicy::KillWarp`]: its live lanes are discarded
    /// (counted as killed, not retired) and their spawn-memory state
    /// records recycled. The emptied warp is released by the next
    /// [`Sm::reap_finished`] like any finished warp.
    pub(crate) fn kill_warp(&mut self, warp_id: usize) {
        let Some(widx) = self.warps.iter().position(|w| w.id == warp_id) else {
            return;
        };
        let mut mask = 0u64;
        for lane in 0..self.warp_size as usize {
            let slot = {
                let Some(t) = self.warps[widx].lanes[lane].as_mut() else {
                    continue;
                };
                if t.exited {
                    continue;
                }
                mask |= 1 << lane;
                // A lane that already spawned a child has handed its state
                // record to that lineage; only childless lanes give the
                // slot back here.
                if t.spawned_child {
                    None
                } else {
                    t.state_slot.take()
                }
            };
            if let Some(s) = slot {
                self.free_state_slots.push(s);
            }
        }
        self.stats.warps_killed += 1;
        self.stats.threads_killed += u64::from(mask.count_ones());
        self.warps[widx].exit_lanes(mask);
    }

    /// Snapshot of this SM's warp state for deadlock diagnostics.
    pub(crate) fn snapshot(&mut self) -> SmSnapshot {
        let sm = self.id;
        let free_state_slots = self.free_state_slots.len();
        let fifo_depth = self.formation.as_ref().map_or(0, |f| f.fifo_len());
        let warps = self
            .warps
            .iter_mut()
            .map(|w| WarpSnapshot {
                warp: w.id,
                pc: w.current().map(|e| e.pc),
                live_lanes: w.active_lanes(),
                ready_at: w.ready_at,
                is_dynamic: w.is_dynamic,
            })
            .collect();
        SmSnapshot {
            sm,
            warps,
            free_state_slots,
            fifo_depth,
        }
    }

    #[allow(clippy::too_many_arguments)]
    // Lane expects are backed by the entry mask: only populated lanes are active.
    #[allow(clippy::expect_used)]
    fn exec_warp_instruction(
        &mut self,
        widx: usize,
        pc: usize,
        mask: u64,
        now: u64,
        ctx: &ExecCtx<'_>,
        view: &FabricView,
        injector: Option<&Injector>,
    ) -> Result<(), Fault> {
        // A wild PC (corrupted stack, bad branch surviving KillWarp) traps
        // instead of aborting the host process.
        let Some(&instr) = ctx.program.get(pc) else {
            return Err(self.fault(
                FaultKind::FetchOutOfRange {
                    len: ctx.program.len(),
                },
                widx,
                pc,
                now,
            ));
        };
        // Guard-pass mask over the PDOM-active lanes.
        let mut pass = 0u64;
        {
            let w = &self.warps[widx];
            for lane in 0..self.warp_size as usize {
                if mask & (1 << lane) == 0 {
                    continue;
                }
                let Some(t) = w.lanes[lane].as_ref() else {
                    continue;
                };
                let ok = match instr.guard {
                    None => true,
                    Some(g) => t.pred(g.pred) != g.negate,
                };
                if ok {
                    pass |= 1 << lane;
                }
            }
        }

        // A stalled spawn consumes the issue slot without committing.
        if let Instr::Spawn { target, ptr } = instr.op {
            // §IX optimization: when every live lane of the warp executes
            // this same spawn, branch the warp to the μ-kernel in place
            // instead of creating threads. Each lane's state pointer is
            // still published through a (resident) spawn-memory scratch
            // block so the μ-kernel's restore sequence works unchanged.
            if self.spawn_policy == SpawnPolicy::OnDivergence {
                let live: u64 = {
                    let w = &self.warps[widx];
                    let mut m = 0u64;
                    for (i, lane) in w.lanes.iter().enumerate() {
                        if lane.as_ref().is_some_and(|t| !t.exited) {
                            m |= 1 << i;
                        }
                    }
                    m
                };
                if pass == live && pass != 0 {
                    if self.warps[widx].elision_block.is_none() {
                        self.warps[widx].elision_block =
                            self.formation.as_mut().and_then(|f| f.try_alloc_block());
                    }
                    if let Some(block) = self.warps[widx].elision_block {
                        let spawn_mem = self.spawn_mem.as_mut().expect("dmk enabled");
                        let mut slots = Vec::with_capacity(pass.count_ones() as usize);
                        let mut idx = 0u32;
                        for lane in 0..self.warp_size as usize {
                            if pass & (1 << lane) == 0 {
                                continue;
                            }
                            let slot = block + 4 * idx;
                            idx += 1;
                            let t = self.warps[widx].lanes[lane].as_mut().expect("populated");
                            spawn_mem.write(slot, t.reg(ptr));
                            t.spawn_mem_addr = slot;
                            slots.push(slot);
                        }
                        let (_, degree) = self.frontend.access_onchip(
                            now,
                            &WarpAccess {
                                space: Space::Spawn,
                                is_store: true,
                                bytes_per_lane: 4,
                                addresses: slots,
                            },
                        );
                        self.block_issue_for_replays(now, degree);
                        self.stats.spawn_elisions += 1;
                        let wid = self.warps[widx].id;
                        self.telemetry.on_spawn_elided(now, wid);
                        self.commit(widx, pc, mask, now, now + 1);
                        self.warps[widx].set_pc(target);
                        return Ok(());
                    }
                    // No scratch block available: fall through to a real
                    // spawn, which applies its own back-pressure.
                }
            }
            let n_active = pass.count_ones();
            // Injected back-pressure: the FIFO or formation area reports
            // full even though it is not, exercising the stall-and-retry
            // recovery path.
            let injected_stall = injector.is_some_and(|i| {
                i.fires(InjectedFault::SpawnFifoFull, now)
                    || i.fires(InjectedFault::FormationFull, now)
            });
            let outcome = if injected_stall {
                self.stats.injected_events += 1;
                Err(SpawnError::FifoFull)
            } else {
                match self.formation.as_mut() {
                    Some(f) => f.spawn(target, n_active),
                    None => return Err(self.fault(FaultKind::SpawnUnsupported, widx, pc, now)),
                }
            };
            match outcome {
                Ok(out) => {
                    // Store each spawning lane's state pointer into its
                    // formation slot (the §IV-C memory transaction).
                    let spawn_mem = self.spawn_mem.as_mut().expect("dmk enabled");
                    let mut slot_iter = out.thread_slots.iter();
                    for lane in 0..self.warp_size as usize {
                        if pass & (1 << lane) == 0 {
                            continue;
                        }
                        let slot = *slot_iter.next().expect("one slot per spawning lane");
                        let t = self.warps[widx].lanes[lane].as_mut().expect("populated");
                        spawn_mem.write(slot, t.reg(ptr));
                        t.spawned_child = true;
                    }
                    self.stats.threads_spawned += u64::from(n_active);
                    let wid = self.warps[widx].id;
                    self.telemetry.on_spawn(now, wid, target, n_active);
                    // The metadata write is a store: charged, not waited on.
                    let (_, degree) = self.frontend.access_onchip(
                        now,
                        &WarpAccess {
                            space: Space::Spawn,
                            is_store: true,
                            bytes_per_lane: 4,
                            addresses: out.thread_slots,
                        },
                    );
                    self.block_issue_for_replays(now, degree);
                    self.commit(widx, pc, mask, now, now + 1);
                    self.warps[widx].set_pc(pc + 1);
                }
                Err(SpawnError::LutFull) => {
                    // Permanent: no LUT line will ever free up for this
                    // target while the program keeps all lines occupied.
                    let capacity = self.formation.as_ref().map_or(0, |f| f.lut().capacity());
                    return Err(self.fault(
                        FaultKind::LutExhausted {
                            target_pc: target,
                            capacity,
                        },
                        widx,
                        pc,
                        now,
                    ));
                }
                Err(SpawnError::FormationFull) | Err(SpawnError::FifoFull) => {
                    // Transient back-pressure: retry shortly, no commit.
                    self.stats.spawn_stall_cycles += 1;
                    let wid = self.warps[widx].id;
                    self.telemetry.on_spawn_stall(now, wid);
                    self.warps[widx].ready_at = now + 4;
                }
            }
            return Ok(());
        }

        match instr.op {
            Instr::Alu { op, d, a, b, c } => {
                let mut latency = 1;
                if matches!(
                    op,
                    simt_isa::AluOp::FDiv
                        | simt_isa::AluOp::FSqrt
                        | simt_isa::AluOp::FRcp
                        | simt_isa::AluOp::IDiv
                        | simt_isa::AluOp::IRem
                ) {
                    latency = self.long_op_latency;
                }
                self.for_each_pass_lane(widx, pass, |t| {
                    let r = simt_isa::eval_alu(op, t.operand(a), t.operand(b), t.operand(c));
                    t.set_reg(d, r);
                });
                self.commit(widx, pc, mask, now, now + u64::from(latency));
                self.warps[widx].set_pc(pc + 1);
            }
            Instr::Setp { cmp, p, a, b } => {
                self.for_each_pass_lane(widx, pass, |t| {
                    let r = simt_isa::eval_cmp(cmp, t.operand(a), t.operand(b));
                    t.set_pred(p, r);
                });
                self.commit(widx, pc, mask, now, now + 1);
                self.warps[widx].set_pc(pc + 1);
            }
            Instr::Selp { d, a, b, p } => {
                self.for_each_pass_lane(widx, pass, |t| {
                    let v = if t.pred(p) {
                        t.operand(a)
                    } else {
                        t.operand(b)
                    };
                    t.set_reg(d, v);
                });
                self.commit(widx, pc, mask, now, now + 1);
                self.warps[widx].set_pc(pc + 1);
            }
            Instr::Mov { d, a } => {
                self.for_each_pass_lane(widx, pass, |t| {
                    let v = t.operand(a);
                    t.set_reg(d, v);
                });
                self.commit(widx, pc, mask, now, now + 1);
                self.warps[widx].set_pc(pc + 1);
            }
            Instr::ReadSpecial { d, s } => {
                let (sm_id, ntid) = (self.id as u32, ctx.ntid);
                let wid = self.warps[widx].id as u32;
                for lane in 0..self.warp_size as usize {
                    if pass & (1 << lane) == 0 {
                        continue;
                    }
                    let t = self.warps[widx].lanes[lane].as_mut().expect("populated");
                    let v = t.special(s, lane as u32, wid, sm_id, ntid);
                    t.set_reg(d, v);
                }
                self.commit(widx, pc, mask, now, now + 1);
                self.warps[widx].set_pc(pc + 1);
            }
            Instr::Nop => {
                self.commit(widx, pc, mask, now, now + 1);
                self.warps[widx].set_pc(pc + 1);
            }
            Instr::Ld {
                space,
                d,
                addr,
                offset,
                width,
            } => {
                let ready = self
                    .exec_memory(widx, pass, space, d, addr, offset, width, false, now, view)
                    .map_err(|m| self.fault(FaultKind::Memory(m), widx, pc, now))?;
                self.commit(widx, pc, mask, now, ready);
                self.warps[widx].set_pc(pc + 1);
            }
            Instr::St {
                space,
                a,
                addr,
                offset,
                width,
            } => {
                // Stores are fire-and-forget: bandwidth/queueing is charged
                // by the timing model, but the warp does not wait for the
                // write to land.
                self.exec_memory(widx, pass, space, a, addr, offset, width, true, now, view)
                    .map_err(|m| self.fault(FaultKind::Memory(m), widx, pc, now))?;
                self.commit(widx, pc, mask, now, now + 1);
                self.warps[widx].set_pc(pc + 1);
            }
            Instr::Bra { target } => {
                let taken = pass;
                let not_taken = mask & !pass;
                self.commit(widx, pc, mask, now, now + 1);
                let w = &mut self.warps[widx];
                if not_taken == 0 {
                    w.set_pc(target);
                } else if taken == 0 {
                    w.set_pc(pc + 1);
                } else {
                    let rpc = ctx.rtab.reconvergence_pc(pc);
                    w.diverge(taken, not_taken, target, pc + 1, rpc);
                }
            }
            Instr::Exit => {
                self.commit(widx, pc, mask, now, now + 1);
                // Advance the entry first so non-exiting lanes continue.
                self.warps[widx].set_pc(pc + 1);
                self.retire_lanes(widx, pass);
            }
            Instr::Spawn { .. } => unreachable!("handled above"),
        }
        Ok(())
    }

    /// Marks lanes retired, updating lineage accounting and recycling
    /// spawn-memory state slots.
    // Lane expects are backed by the caller passing live-lane masks only.
    #[allow(clippy::expect_used)]
    fn retire_lanes(&mut self, widx: usize, lanes: u64) {
        for lane in 0..self.warp_size as usize {
            if lanes & (1 << lane) == 0 {
                continue;
            }
            let t = self.warps[widx].lanes[lane].as_mut().expect("populated");
            self.stats.threads_retired += 1;
            if !t.spawned_child {
                self.stats.lineages_completed += 1;
                if let Some(slot) = t.state_slot.take() {
                    self.free_state_slots.push(slot);
                }
            }
        }
        self.warps[widx].exit_lanes(lanes);
    }

    /// Executes one warp memory instruction in phase A. On-chip accesses
    /// (shared/spawn) transfer immediately — their backing is SM-private.
    /// Off-chip accesses are *validated* against the fabric view, then
    /// deferred as functional ops + coalesced module requests for phase B;
    /// the returned data-ready cycle is a floor that phase B may raise.
    ///
    /// On a fault, lanes already validated keep their effects (imprecise
    /// trap): their ops are flushed to the pending queue without a timing
    /// request, exactly as the serial model left partial transfers applied.
    #[allow(clippy::too_many_arguments)]
    // Lane expects are backed by the caller passing live-lane masks only.
    #[allow(clippy::expect_used)]
    fn exec_memory(
        &mut self,
        widx: usize,
        pass: u64,
        space: Space,
        reg: simt_isa::Reg,
        addr_reg: simt_isa::Reg,
        offset: i32,
        width: Width,
        is_store: bool,
        now: u64,
        view: &FabricView,
    ) -> Result<u64, MemFault> {
        let nwords = width.regs() as u32;
        let warp_id = self.warps[widx].id;
        let mut addresses: Vec<u32> = Vec::with_capacity(pass.count_ones() as usize);

        if space.is_on_chip() {
            // On-chip spaces wrap modulo capacity like the banked hardware,
            // but misalignment is still a trap, and a spawn-space access
            // without μ-kernel hardware has no backing at all.
            for lane in 0..self.warp_size as usize {
                if pass & (1 << lane) == 0 {
                    continue;
                }
                let base = {
                    let t = self.warps[widx].lanes[lane].as_ref().expect("populated");
                    t.reg(addr_reg).wrapping_add(offset as u32)
                };
                for i in 0..nwords {
                    let a = base + 4 * i;
                    let r = simt_isa::Reg(reg.0 + i as u8);
                    if a % 4 != 0 {
                        return Err(MemFault::Misaligned { space, addr: a });
                    }
                    if space == Space::Spawn && self.spawn_mem.is_none() {
                        return Err(MemFault::Unmapped { space });
                    }
                    if is_store {
                        let v = self.warps[widx].lanes[lane]
                            .as_ref()
                            .expect("populated")
                            .reg(r);
                        match space {
                            Space::Shared => self.shared.write(a, v),
                            _ => self.spawn_mem.as_mut().expect("checked").write(a, v),
                        }
                    } else {
                        let v = match space {
                            Space::Shared => self.shared.read(a),
                            _ => self.spawn_mem.as_ref().expect("checked").read(a),
                        };
                        self.warps[widx].lanes[lane]
                            .as_mut()
                            .expect("populated")
                            .set_reg(r, v);
                    }
                }
                addresses.push(base);
            }
            // A dynamic warp's first spawn-space load consumes its
            // formation metadata; the block can be recycled afterwards.
            if space == Space::Spawn && !is_store {
                if let Some(base) = self.warps[widx].formation_block.take() {
                    if let Some(f) = self.formation.as_mut() {
                        f.release_block(base);
                    }
                }
            }
            let req = WarpAccess {
                space,
                is_store,
                bytes_per_lane: width.bytes(),
                addresses,
            };
            let (ready, degree) = self.frontend.access_onchip(now, &req);
            self.block_issue_for_replays(now, degree);
            return Ok(ready);
        }

        // Off-chip: validate word by word in lane order (mirroring the
        // order the serial model performed the transfers in), capturing
        // deferred ops. Store values are read from the register file *now*,
        // at issue, so phase B applies exactly what the lane held.
        let mut ops: Vec<FunctionalOp> = Vec::new();
        for lane in 0..self.warp_size as usize {
            if pass & (1 << lane) == 0 {
                continue;
            }
            let (tid, base) = {
                let t = self.warps[widx].lanes[lane].as_ref().expect("populated");
                (t.tid, t.reg(addr_reg).wrapping_add(offset as u32))
            };
            for i in 0..nwords {
                let a = base + 4 * i;
                let r = simt_isa::Reg(reg.0 + i as u8);
                let checked = if is_store {
                    view.check_store(space, a)
                } else {
                    view.check_load(space, a)
                };
                if let Err(fault) = checked {
                    if !ops.is_empty() {
                        self.pending.push(PendingAccess {
                            warp_id,
                            wait: false,
                            ops,
                            requests: Vec::new(),
                        });
                    }
                    return Err(fault);
                }
                if is_store {
                    let v = self.warps[widx].lanes[lane]
                        .as_ref()
                        .expect("populated")
                        .reg(r);
                    ops.push(FunctionalOp::Store {
                        space,
                        tid,
                        addr: a,
                        value: v,
                    });
                } else {
                    ops.push(FunctionalOp::Load {
                        space,
                        tid,
                        addr: a,
                        lane,
                        reg: r,
                    });
                }
            }
            // Timing address: local uses the per-thread physical mapping.
            let timing_addr = if space == Space::Local {
                view.local_physical(tid, base)
            } else {
                base
            };
            addresses.push(timing_addr);
        }

        // Texture-bound global loads go through the per-SM read-only cache.
        if !is_store && space == Space::Global && !view.config().ideal && self.frontend.has_tex() {
            let (cached, uncached): (Vec<u32>, Vec<u32>) =
                addresses.iter().partition(|&&a| view.is_read_only(a));
            let miss_lines = self.frontend.tex_probe(&cached, width.bytes());
            let line = view.config().tex_line_bytes;
            let mut ready = now + u64::from(view.config().tex_hit_latency);
            let mut requests = Vec::new();
            if !miss_lines.is_empty() {
                let (floor, req) =
                    self.frontend
                        .request_offchip(now, Space::Global, false, line, &miss_lines);
                ready = ready.max(floor);
                requests.extend(req);
            }
            if !uncached.is_empty() {
                let (floor, req) = self.frontend.request_offchip(
                    now,
                    Space::Global,
                    false,
                    width.bytes(),
                    &uncached,
                );
                ready = ready.max(floor);
                requests.extend(req);
            }
            if self.telemetry.is_on() {
                if !cached.is_empty() {
                    self.telemetry.on_tex(
                        now,
                        warp_id,
                        cached.len() as u32,
                        miss_lines.len() as u32,
                    );
                }
                if !requests.is_empty() {
                    let segments = requests.iter().map(|r| r.segments.len() as u32).sum();
                    self.telemetry
                        .on_offchip(now, warp_id, addresses.len() as u32, segments);
                }
            }
            if !ops.is_empty() || !requests.is_empty() {
                self.pending.push(PendingAccess {
                    warp_id,
                    wait: true,
                    ops,
                    requests,
                });
            }
            return Ok(ready);
        }

        let (ready, request) =
            self.frontend
                .request_offchip(now, space, is_store, width.bytes(), &addresses);
        let requests: Vec<_> = request.into_iter().collect();
        if self.telemetry.is_on() && !requests.is_empty() {
            let segments = requests.iter().map(|r| r.segments.len() as u32).sum();
            self.telemetry
                .on_offchip(now, warp_id, addresses.len() as u32, segments);
        }
        if !ops.is_empty() || !requests.is_empty() {
            self.pending.push(PendingAccess {
                warp_id,
                wait: !is_store,
                ops,
                requests,
            });
        }
        Ok(ready)
    }

    /// Bank-conflict replays steal issue slots: a degree-`d` access
    /// re-issues `d - 1` times, blocking the SM's issue port meanwhile.
    fn block_issue_for_replays(&mut self, now: u64, degree: u32) {
        if degree > 1 {
            let start = now.max(self.issue_blocked_until);
            self.issue_blocked_until = start + u64::from(degree - 1);
        }
    }

    // Pass masks are subsets of the populated-lane mask.
    #[allow(clippy::expect_used)]
    fn for_each_pass_lane(&mut self, widx: usize, pass: u64, mut f: impl FnMut(&mut ThreadCtx)) {
        for lane in 0..self.warp_size as usize {
            if pass & (1 << lane) == 0 {
                continue;
            }
            let t = self.warps[widx].lanes[lane]
                .as_mut()
                .expect("populated lane");
            f(t);
        }
    }

    /// Records statistics for one committed warp-instruction.
    fn commit(&mut self, widx: usize, pc: usize, mask: u64, now: u64, ready: u64) {
        let active = mask.count_ones();
        self.stats.warp_issues += 1;
        self.stats.thread_instructions += u64::from(active);
        self.stats.divergence.record_issue(now, active);
        if self.telemetry.is_on() {
            let wid = self.warps[widx].id;
            let depth = self.warps[widx].stack_depth() as u32;
            self.telemetry.on_issue(now, wid, pc, active, depth);
        }
        let w = &mut self.warps[widx];
        w.ready_at = ready.max(now + 1);
        for lane in 0..self.warp_size as usize {
            if mask & (1 << lane) == 0 {
                continue;
            }
            if let Some(t) = w.lanes[lane].as_mut() {
                t.instructions += 1;
            }
        }
    }

    /// Serializes this SM's complete mutable state for a simulator
    /// checkpoint. Must only be called at the inter-cycle barrier, where
    /// the phase-A pending queue is drained (it is every cycle).
    pub(crate) fn encode_state(&self, enc: &mut Encoder) {
        debug_assert!(
            self.pending.is_empty(),
            "checkpoint only at the cycle barrier"
        );
        enc.put_usize(self.warps.len());
        for w in &self.warps {
            w.encode_state(enc);
        }
        enc.put_usize(self.next_warp_id);
        enc.put_usize(self.rr);
        self.shared.encode_state(enc);
        enc.put_bool(self.spawn_mem.is_some());
        if let Some(m) = &self.spawn_mem {
            m.encode_state(enc);
        }
        enc.put_bool(self.formation.is_some());
        if let Some(f) = &self.formation {
            f.encode_state(enc);
        }
        enc.put_u32(self.threads_used);
        enc.put_u32(self.regs_used);
        let mut blocks: Vec<(usize, u32)> = self.blocks.iter().map(|(&b, &n)| (b, n)).collect();
        blocks.sort_unstable();
        enc.put_usize(blocks.len());
        for (b, n) in blocks {
            enc.put_usize(b);
            enc.put_u32(n);
        }
        enc.put_u32_slice(&self.free_state_slots);
        self.frontend.encode_state(enc);
        enc.put_u64(self.issue_blocked_until);
        self.stats.encode_state(enc);
        self.telemetry.encode_state(enc);
    }

    /// Restores state written by [`Sm::encode_state`] into an SM freshly
    /// built with [`Sm::new`] from the same configuration.
    pub(crate) fn restore_state(&mut self, dec: &mut Decoder<'_>) -> Result<(), CodecError> {
        let n = dec.take_len(30)?;
        self.warps = (0..n)
            .map(|_| Warp::restore_state(dec))
            .collect::<Result<_, CodecError>>()?;
        self.next_warp_id = dec.take_usize()?;
        self.rr = dec.take_usize()?;
        self.shared.restore_state(dec)?;
        let has_spawn_mem = dec.take_bool()?;
        if has_spawn_mem != self.spawn_mem.is_some() {
            return Err(CodecError::BadTag {
                what: "spawn memory presence",
                tag: has_spawn_mem as u64,
            });
        }
        if let Some(m) = self.spawn_mem.as_mut() {
            m.restore_state(dec)?;
        }
        let has_formation = dec.take_bool()?;
        if has_formation != self.formation.is_some() {
            return Err(CodecError::BadTag {
                what: "formation unit presence",
                tag: has_formation as u64,
            });
        }
        if let Some(f) = self.formation.as_mut() {
            f.restore_state(dec)?;
        }
        self.threads_used = dec.take_u32()?;
        self.regs_used = dec.take_u32()?;
        let nb = dec.take_len(12)?;
        self.blocks = (0..nb)
            .map(|_| Ok((dec.take_usize()?, dec.take_u32()?)))
            .collect::<Result<_, CodecError>>()?;
        self.free_state_slots = dec.take_u32_vec()?;
        self.frontend.restore_state(dec)?;
        self.issue_blocked_until = dec.take_u64()?;
        self.stats.restore_state(dec)?;
        self.telemetry.restore_state(dec)?;
        self.pending.clear();
        Ok(())
    }

    /// Test/diagnostic access to shared memory contents.
    pub fn shared_mem(&self) -> &OnChipMemory {
        &self.shared
    }

    /// Test/diagnostic access to spawn memory contents.
    pub fn spawn_mem(&self) -> Option<&OnChipMemory> {
        self.spawn_mem.as_ref()
    }
}
