//! Deterministic checkpoint/restore of the whole simulated machine.
//!
//! A [`Snapshot`] captures every piece of mutable architectural state the
//! simulator owns — warps, per-thread registers and predicates, formation
//! unit (LUT, partial-warp pool, new-warp FIFO), per-SM memory frontends,
//! the shared memory fabric (backing stores and DRAM module timing),
//! statistics shards, the fault log, and the fault injector — plus the
//! machine configuration and the active launch (program, pending blocks,
//! dynamic-tid counter). Restoring a snapshot yields a [`crate::Gpu`]
//! whose subsequent execution is bit-identical to the machine that was
//! checkpointed, at every phase-A parallelism level.
//!
//! Snapshots may only be taken between cycles (the inter-`run` barrier):
//! that is the one point where no phase-A work is queued, no fabric
//! request is in flight (requests retire within the cycle that issues
//! them; only per-module `free`-time floats persist), and the statistics
//! shards are self-consistent. [`crate::Gpu::checkpoint`] enforces this by
//! construction — it can only be called between [`crate::Gpu::run`] calls.
//!
//! # On-disk format (version 2)
//!
//! ```text
//! [0..8)   magic  b"DMKSNAP\0"
//! [8..]    version: u32        (little-endian, like all fields)
//!          meta:    u64 length + bytes   (opaque caller section)
//!          payload: u64 length + bytes   (machine state)
//! [-8..]   FNV-1a-64 checksum of every preceding byte
//! ```
//!
//! The payload is written with the deterministic codec in
//! [`simt_isa::codec`]; the trailing checksum rejects truncated or
//! bit-flipped files before any of the payload is interpreted. The `meta`
//! section carries caller state (the experiment supervisor stores its job
//! progress there) and is not interpreted by this module.
//!
//! The same `magic / version / meta / payload / FNV-1a-64` frame is
//! exposed generically as [`seal_frame`] / [`open_frame`] so other
//! durable artifacts (the campaign result cache in
//! `experiments::campaign`) share one checksummed container and one set
//! of corruption-rejection tests instead of inventing parallel formats.
//! [`write_atomic`] is the matching durability primitive: temp-file
//! write, `fsync`, atomic rename, and (where supported) a directory
//! `fsync`, so a process killed at any instant can never leave a
//! torn-but-renamed file behind.

use crate::config::{GpuConfig, SchedulingModel, SpawnPolicy};
use crate::fault::FaultPolicy;
use dmk_core::DmkConfig;
use simt_isa::codec::{fnv1a64, CodecError, Decoder, Encoder};
use simt_isa::{EntryPoint, Program, ResourceUsage};
use simt_mem::MemConfig;
use std::collections::BTreeMap;
use std::fmt;
use std::fs;
use std::io;
use std::path::Path;

/// Magic bytes identifying a snapshot file.
pub const SNAPSHOT_MAGIC: [u8; 8] = *b"DMKSNAP\0";

/// Current snapshot format version. Bumped whenever the payload layout
/// changes; older versions are rejected rather than misread.
///
/// Version history: 1 — initial format; 2 — per-SM telemetry shards and
/// per-DRAM-module busy accounting joined the payload; 3 — per-lane
/// thread state stored as one struct-of-arrays block per warp
/// ([`crate::LaneState`]) instead of per-lane option+context records;
/// 4 — the L1/L2 cache hierarchy joined the payload (cache-geometry
/// config knobs, per-SM L1 tags + MSHR tables, L2 slices, interconnect
/// arbiter state, and the L1 columns of the telemetry counters).
pub const SNAPSHOT_VERSION: u32 = 4;

/// Why a snapshot could not be restored.
///
/// Marked `#[non_exhaustive]`: new failure modes may be diagnosed in
/// future format versions, so downstream matches need a wildcard arm.
#[derive(Debug)]
#[non_exhaustive]
pub enum RestoreError {
    /// The file does not start with [`SNAPSHOT_MAGIC`].
    BadMagic,
    /// The snapshot was written by an incompatible format version.
    UnsupportedVersion(u32),
    /// The trailing checksum does not match the contents — the file is
    /// truncated or corrupt.
    ChecksumMismatch {
        /// Checksum recorded in the file.
        expected: u64,
        /// Checksum recomputed over the file contents.
        actual: u64,
    },
    /// The payload is malformed (truncated mid-field, bad tag, or a
    /// length inconsistent with the captured configuration).
    Codec(CodecError),
    /// The payload decoded but describes an impossible machine (e.g. a
    /// program that fails validation).
    Invalid(String),
    /// The snapshot file could not be read.
    Io(io::Error),
}

impl fmt::Display for RestoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RestoreError::BadMagic => write!(f, "not a snapshot file (bad magic)"),
            RestoreError::UnsupportedVersion(v) => {
                write!(f, "unsupported snapshot version {v} (supported: {SNAPSHOT_VERSION})")
            }
            RestoreError::ChecksumMismatch { expected, actual } => write!(
                f,
                "snapshot checksum mismatch (file {expected:#018x}, computed {actual:#018x}): truncated or corrupt"
            ),
            RestoreError::Codec(e) => write!(f, "malformed snapshot payload: {e}"),
            RestoreError::Invalid(why) => write!(f, "snapshot describes an invalid machine: {why}"),
            RestoreError::Io(e) => write!(f, "snapshot i/o error: {e}"),
        }
    }
}

impl std::error::Error for RestoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            RestoreError::Codec(e) => Some(e),
            RestoreError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CodecError> for RestoreError {
    fn from(e: CodecError) -> Self {
        RestoreError::Codec(e)
    }
}

impl From<io::Error> for RestoreError {
    fn from(e: io::Error) -> Self {
        RestoreError::Io(e)
    }
}

/// A serialized machine state plus an opaque caller `meta` section.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Snapshot {
    payload: Vec<u8>,
    meta: Vec<u8>,
}

impl Snapshot {
    /// Wraps a machine-state payload produced by
    /// [`crate::Gpu::checkpoint`].
    pub(crate) fn from_payload(payload: Vec<u8>) -> Self {
        Snapshot {
            payload,
            meta: Vec::new(),
        }
    }

    /// The machine-state payload.
    pub fn payload(&self) -> &[u8] {
        &self.payload
    }

    /// The opaque caller section (empty unless [`Snapshot::set_meta`] was
    /// called).
    pub fn meta(&self) -> &[u8] {
        &self.meta
    }

    /// Attaches caller state (e.g. experiment-runner job progress) that
    /// rides along with the machine state, covered by the same checksum.
    pub fn set_meta(&mut self, meta: Vec<u8>) {
        self.meta = meta;
    }

    /// Serializes the snapshot to the versioned, checksummed file format.
    pub fn to_bytes(&self) -> Vec<u8> {
        seal_frame(&SNAPSHOT_MAGIC, SNAPSHOT_VERSION, &self.meta, &self.payload)
    }

    /// Parses a snapshot file, verifying magic, version, and checksum
    /// before interpreting any content.
    ///
    /// # Errors
    ///
    /// Returns a [`RestoreError`] on bad magic, an unsupported version, a
    /// checksum mismatch (truncation, bit flips), or a malformed frame.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, RestoreError> {
        let (meta, payload) = open_frame(&SNAPSHOT_MAGIC, SNAPSHOT_VERSION, bytes)?;
        Ok(Snapshot { payload, meta })
    }

    /// Writes the snapshot to `path` atomically and durably (temp file,
    /// `fsync`, rename, directory `fsync` — see [`write_atomic`]), so a
    /// process killed at any instant can never leave a torn snapshot for
    /// a later resume to trust.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors from the write, syncs, or the rename.
    pub fn write_to(&self, path: &Path) -> io::Result<()> {
        write_atomic(path, &self.to_bytes())
    }

    /// Reads and verifies a snapshot from `path`.
    ///
    /// # Errors
    ///
    /// Returns a [`RestoreError`] for i/o failures or any of the
    /// [`Snapshot::from_bytes`] rejections.
    pub fn read_from(path: &Path) -> Result<Self, RestoreError> {
        Self::from_bytes(&fs::read(path)?)
    }
}

/// Seals `meta` + `payload` into the checksummed snapshot frame under a
/// caller-chosen 8-byte magic and version. The result is accepted only
/// by [`open_frame`] with the same magic and version; every truncation
/// and bit flip is rejected by the trailing FNV-1a-64 checksum.
pub fn seal_frame(magic: &[u8; 8], version: u32, meta: &[u8], payload: &[u8]) -> Vec<u8> {
    let mut enc = Encoder::new();
    enc.put_u32(version);
    enc.put_bytes(meta);
    enc.put_bytes(payload);
    let body = enc.into_bytes();
    let mut bytes = Vec::with_capacity(magic.len() + body.len() + 8);
    bytes.extend_from_slice(magic);
    bytes.extend_from_slice(&body);
    let checksum = fnv1a64(&bytes);
    bytes.extend_from_slice(&checksum.to_le_bytes());
    bytes
}

/// Opens a frame written by [`seal_frame`], verifying magic, version,
/// and checksum before interpreting any content, and returns
/// `(meta, payload)`.
///
/// # Errors
///
/// Returns a [`RestoreError`] on bad magic, a version other than
/// `version`, a checksum mismatch (truncation, bit flips), or a
/// malformed frame.
pub fn open_frame(
    magic: &[u8; 8],
    version: u32,
    bytes: &[u8],
) -> Result<(Vec<u8>, Vec<u8>), RestoreError> {
    if bytes.len() < magic.len() || !bytes.starts_with(magic) {
        return Err(RestoreError::BadMagic);
    }
    let Some(body_len) = bytes.len().checked_sub(8) else {
        return Err(RestoreError::BadMagic);
    };
    if body_len < magic.len() + 4 {
        return Err(RestoreError::Codec(CodecError::UnexpectedEof {
            needed: magic.len() + 4 + 8,
            remaining: bytes.len(),
        }));
    }
    let mut expected = [0u8; 8];
    expected.copy_from_slice(&bytes[body_len..]);
    let expected = u64::from_le_bytes(expected);
    let actual = fnv1a64(&bytes[..body_len]);
    if expected != actual {
        return Err(RestoreError::ChecksumMismatch { expected, actual });
    }
    let mut dec = Decoder::new(&bytes[magic.len()..body_len]);
    let got_version = dec.take_u32()?;
    if got_version != version {
        return Err(RestoreError::UnsupportedVersion(got_version));
    }
    let meta = dec.take_bytes()?;
    let payload = dec.take_bytes()?;
    if !dec.is_finished() {
        return Err(RestoreError::Invalid(format!(
            "{} trailing bytes after the payload",
            dec.remaining()
        )));
    }
    Ok((meta, payload))
}

/// Writes `bytes` to `path` atomically and durably: the bytes land in a
/// `.tmp` sibling, are `fsync`ed *before* the atomic rename, and the
/// containing directory is `fsync`ed after it (on Unix). A process
/// killed at any instant therefore leaves either the old file, no file,
/// or the complete new file — never a renamed-but-torn one.
///
/// # Errors
///
/// Propagates filesystem errors from the write, the data sync, or the
/// rename. A failed *directory* sync is ignored: the rename itself is
/// already atomic, and some filesystems refuse directory fsync.
pub fn write_atomic(path: &Path, bytes: &[u8]) -> io::Result<()> {
    use std::io::Write as _;
    let mut tmp = path.as_os_str().to_owned();
    tmp.push(".tmp");
    let tmp = std::path::PathBuf::from(tmp);
    {
        let mut f = fs::File::create(&tmp)?;
        f.write_all(bytes)?;
        f.sync_all()?;
    }
    fs::rename(&tmp, path)?;
    #[cfg(unix)]
    if let Some(dir) = path.parent().filter(|d| !d.as_os_str().is_empty()) {
        if let Ok(d) = fs::File::open(dir) {
            let _ = d.sync_all();
        }
    }
    Ok(())
}

/// Deterministic FNV-1a-64 digest of a full machine configuration (the
/// same encoding a snapshot stores). Campaign job identities hash this
/// so any configuration change — memory timing, scheduling model, fault
/// policy — lands in a different result-cache key.
pub fn config_digest(cfg: &GpuConfig) -> u64 {
    let mut enc = Encoder::new();
    put_gpu_config(&mut enc, cfg);
    fnv1a64(&enc.into_bytes())
}

/// Deterministic FNV-1a-64 digest of a program — instruction words,
/// labels, entry points, and resource usage, via the snapshot codec.
///
/// # Errors
///
/// Propagates [`simt_isa::EncodeError`] for a program the lossless ISA
/// codec cannot represent.
pub fn program_digest(p: &Program) -> Result<u64, simt_isa::EncodeError> {
    let mut enc = Encoder::new();
    put_program(&mut enc, p)?;
    Ok(fnv1a64(&enc.into_bytes()))
}

fn put_mem_config(enc: &mut Encoder, m: &MemConfig) {
    enc.put_usize(m.num_modules);
    enc.put_u32(m.bytes_per_cycle);
    enc.put_u32(m.dram_latency);
    enc.put_f64(m.dram_clock_ratio);
    enc.put_u32(m.segment_bytes);
    enc.put_usize(m.shared_banks);
    enc.put_u32(m.shared_latency);
    enc.put_bool(m.spawn_bank_conflicts);
    enc.put_bool(m.ideal);
    enc.put_bool(m.spawn_admission_reads);
    enc.put_u32(m.tex_cache_bytes);
    enc.put_u32(m.tex_line_bytes);
    enc.put_usize(m.tex_ways);
    enc.put_u32(m.tex_hit_latency);
    enc.put_u32(m.l1_bytes);
    enc.put_u32(m.l1_line_bytes);
    enc.put_usize(m.l1_ways);
    enc.put_u32(m.l1_hit_latency);
    enc.put_usize(m.l1_mshr_entries);
    enc.put_u32(m.l2_bytes);
    enc.put_u32(m.l2_line_bytes);
    enc.put_usize(m.l2_ways);
    enc.put_u32(m.l2_hit_latency);
    enc.put_u32(m.icnt_latency);
    enc.put_u32(m.icnt_flit_cycles);
}

fn take_mem_config(dec: &mut Decoder<'_>) -> Result<MemConfig, CodecError> {
    Ok(MemConfig {
        num_modules: dec.take_usize()?,
        bytes_per_cycle: dec.take_u32()?,
        dram_latency: dec.take_u32()?,
        dram_clock_ratio: dec.take_f64()?,
        segment_bytes: dec.take_u32()?,
        shared_banks: dec.take_usize()?,
        shared_latency: dec.take_u32()?,
        spawn_bank_conflicts: dec.take_bool()?,
        ideal: dec.take_bool()?,
        spawn_admission_reads: dec.take_bool()?,
        tex_cache_bytes: dec.take_u32()?,
        tex_line_bytes: dec.take_u32()?,
        tex_ways: dec.take_usize()?,
        tex_hit_latency: dec.take_u32()?,
        l1_bytes: dec.take_u32()?,
        l1_line_bytes: dec.take_u32()?,
        l1_ways: dec.take_usize()?,
        l1_hit_latency: dec.take_u32()?,
        l1_mshr_entries: dec.take_usize()?,
        l2_bytes: dec.take_u32()?,
        l2_line_bytes: dec.take_u32()?,
        l2_ways: dec.take_usize()?,
        l2_hit_latency: dec.take_u32()?,
        icnt_latency: dec.take_u32()?,
        icnt_flit_cycles: dec.take_u32()?,
    })
}

/// Serializes the full machine configuration (the snapshot is
/// self-describing: restore rebuilds the machine from this and then
/// patches the mutable state in).
pub(crate) fn put_gpu_config(enc: &mut Encoder, cfg: &GpuConfig) {
    enc.put_usize(cfg.num_sms);
    enc.put_u32(cfg.warp_size);
    enc.put_u32(cfg.sps_per_sm);
    enc.put_u32(cfg.max_threads_per_sm);
    enc.put_u32(cfg.max_blocks_per_sm);
    enc.put_u32(cfg.registers_per_sm);
    enc.put_u32(cfg.shared_mem_per_sm);
    enc.put_u8(match cfg.scheduling {
        SchedulingModel::Block => 0,
        SchedulingModel::Warp => 1,
    });
    enc.put_u32(cfg.long_op_latency);
    enc.put_f64(cfg.clock_ghz);
    put_mem_config(enc, &cfg.mem);
    enc.put_bool(cfg.dmk.is_some());
    if let Some(d) = &cfg.dmk {
        enc.put_u32(d.warp_size);
        enc.put_u32(d.threads_per_sm);
        enc.put_u32(d.state_bytes);
        enc.put_u32(d.num_ukernels);
        enc.put_usize(d.fifo_capacity);
    }
    enc.put_u8(match cfg.spawn_policy {
        SpawnPolicy::Always => 0,
        SpawnPolicy::OnDivergence => 1,
    });
    enc.put_u64(cfg.divergence_window);
    enc.put_u8(match cfg.fault_policy {
        FaultPolicy::Abort => 0,
        FaultPolicy::KillWarp => 1,
    });
    enc.put_u64(cfg.watchdog_cycles);
}

/// Decodes a configuration written by [`put_gpu_config`].
pub(crate) fn take_gpu_config(dec: &mut Decoder<'_>) -> Result<GpuConfig, CodecError> {
    let num_sms = dec.take_usize()?;
    let warp_size = dec.take_u32()?;
    let sps_per_sm = dec.take_u32()?;
    let max_threads_per_sm = dec.take_u32()?;
    let max_blocks_per_sm = dec.take_u32()?;
    let registers_per_sm = dec.take_u32()?;
    let shared_mem_per_sm = dec.take_u32()?;
    let scheduling = match dec.take_u8()? {
        0 => SchedulingModel::Block,
        1 => SchedulingModel::Warp,
        tag => {
            return Err(CodecError::BadTag {
                what: "scheduling model",
                tag: tag as u64,
            })
        }
    };
    let long_op_latency = dec.take_u32()?;
    let clock_ghz = dec.take_f64()?;
    let mem = take_mem_config(dec)?;
    let dmk = if dec.take_bool()? {
        Some(DmkConfig {
            warp_size: dec.take_u32()?,
            threads_per_sm: dec.take_u32()?,
            state_bytes: dec.take_u32()?,
            num_ukernels: dec.take_u32()?,
            fifo_capacity: dec.take_usize()?,
        })
    } else {
        None
    };
    let spawn_policy = match dec.take_u8()? {
        0 => SpawnPolicy::Always,
        1 => SpawnPolicy::OnDivergence,
        tag => {
            return Err(CodecError::BadTag {
                what: "spawn policy",
                tag: tag as u64,
            })
        }
    };
    let divergence_window = dec.take_u64()?;
    let fault_policy = match dec.take_u8()? {
        0 => FaultPolicy::Abort,
        1 => FaultPolicy::KillWarp,
        tag => {
            return Err(CodecError::BadTag {
                what: "fault policy",
                tag: tag as u64,
            })
        }
    };
    let watchdog_cycles = dec.take_u64()?;
    Ok(GpuConfig {
        num_sms,
        warp_size,
        sps_per_sm,
        max_threads_per_sm,
        max_blocks_per_sm,
        registers_per_sm,
        shared_mem_per_sm,
        scheduling,
        long_op_latency,
        clock_ghz,
        mem,
        dmk,
        spawn_policy,
        divergence_window,
        fault_policy,
        watchdog_cycles,
    })
}

/// Serializes a program: instructions through the lossless 96-bit ISA
/// codec ([`simt_isa::encode_program`]) plus name, labels, entry points,
/// and resource usage.
pub(crate) fn put_program(enc: &mut Encoder, p: &Program) -> Result<(), simt_isa::EncodeError> {
    enc.put_str(p.name());
    enc.put_u32_slice(&simt_isa::encode_program(p)?);
    enc.put_usize(p.labels().len());
    for (label, pc) in p.labels() {
        enc.put_str(label);
        enc.put_usize(*pc);
    }
    enc.put_usize(p.entry_points().len());
    for e in p.entry_points() {
        enc.put_str(&e.name);
        enc.put_usize(e.pc);
    }
    let r = p.resource_usage();
    enc.put_u32(r.registers);
    enc.put_u32(r.shared_bytes);
    enc.put_u32(r.global_bytes);
    enc.put_u32(r.const_bytes);
    enc.put_u32(r.local_bytes);
    enc.put_u32(r.spawn_state_bytes);
    Ok(())
}

/// Decodes a program written by [`put_program`], revalidating it through
/// [`Program::new`].
pub(crate) fn take_program(dec: &mut Decoder<'_>) -> Result<Program, RestoreError> {
    let name = dec.take_str()?;
    let words = dec.take_u32_vec()?;
    if !words.len().is_multiple_of(3) {
        return Err(RestoreError::Invalid(format!(
            "program section is {} words, not a multiple of 3",
            words.len()
        )));
    }
    let instrs = words
        .chunks_exact(3)
        .map(|c| {
            simt_isa::decode([c[0], c[1], c[2]])
                .map_err(|e| RestoreError::Invalid(format!("undecodable instruction: {e}")))
        })
        .collect::<Result<Vec<_>, _>>()?;
    let nlabels = dec.take_len(9)?;
    let mut labels = BTreeMap::new();
    for _ in 0..nlabels {
        let label = dec.take_str()?;
        labels.insert(label, dec.take_usize()?);
    }
    let nentries = dec.take_len(9)?;
    let entry_points = (0..nentries)
        .map(|_| {
            Ok(EntryPoint {
                name: dec.take_str()?,
                pc: dec.take_usize()?,
            })
        })
        .collect::<Result<Vec<_>, CodecError>>()?;
    let resources = ResourceUsage {
        registers: dec.take_u32()?,
        shared_bytes: dec.take_u32()?,
        global_bytes: dec.take_u32()?,
        const_bytes: dec.take_u32()?,
        local_bytes: dec.take_u32()?,
        spawn_state_bytes: dec.take_u32()?,
    };
    Program::new(name, instrs, labels, entry_points, resources)
        .map_err(|e| RestoreError::Invalid(format!("program failed revalidation: {e}")))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::GpuConfig;

    #[test]
    fn frame_roundtrip_preserves_payload_and_meta() {
        let mut s = Snapshot::from_payload(vec![1, 2, 3, 4, 5]);
        s.set_meta(vec![9, 9]);
        let bytes = s.to_bytes();
        let back = Snapshot::from_bytes(&bytes).expect("roundtrip");
        assert_eq!(back, s);
    }

    #[test]
    fn empty_sections_roundtrip() {
        let s = Snapshot::from_payload(Vec::new());
        let back = Snapshot::from_bytes(&s.to_bytes()).expect("roundtrip");
        assert_eq!(back, s);
    }

    #[test]
    fn bad_magic_is_rejected() {
        let mut bytes = Snapshot::from_payload(vec![1]).to_bytes();
        bytes[0] = b'X';
        assert!(matches!(
            Snapshot::from_bytes(&bytes),
            Err(RestoreError::BadMagic)
        ));
    }

    #[test]
    fn every_truncation_is_rejected() {
        let bytes = Snapshot::from_payload(vec![7; 32]).to_bytes();
        for len in 0..bytes.len() {
            assert!(
                Snapshot::from_bytes(&bytes[..len]).is_err(),
                "truncation to {len} bytes was accepted"
            );
        }
    }

    #[test]
    fn every_single_bit_flip_is_rejected() {
        let bytes = Snapshot::from_payload(vec![0xAB; 16]).to_bytes();
        for i in 0..bytes.len() {
            for bit in 0..8 {
                let mut corrupt = bytes.clone();
                corrupt[i] ^= 1 << bit;
                assert!(
                    Snapshot::from_bytes(&corrupt).is_err(),
                    "bit flip at byte {i} bit {bit} was accepted"
                );
            }
        }
    }

    #[test]
    fn future_version_is_rejected_by_version_not_checksum() {
        // Re-frame with a bumped version but a correct checksum: the
        // version gate must fire.
        let s = Snapshot::from_payload(vec![1, 2, 3]);
        let mut enc = Encoder::new();
        enc.put_u32(SNAPSHOT_VERSION + 1);
        enc.put_bytes(&[]);
        enc.put_bytes(&s.payload);
        let mut bytes = SNAPSHOT_MAGIC.to_vec();
        bytes.extend_from_slice(&enc.into_bytes());
        let checksum = fnv1a64(&bytes);
        bytes.extend_from_slice(&checksum.to_le_bytes());
        assert!(matches!(
            Snapshot::from_bytes(&bytes),
            Err(RestoreError::UnsupportedVersion(v)) if v == SNAPSHOT_VERSION + 1
        ));
    }

    #[test]
    fn generic_frame_is_magic_and_version_scoped() {
        const MAGIC_A: [u8; 8] = *b"DMKRSLT\0";
        let bytes = seal_frame(&MAGIC_A, 1, b"meta", b"payload");
        let (meta, payload) = open_frame(&MAGIC_A, 1, &bytes).expect("roundtrip");
        assert_eq!(meta, b"meta");
        assert_eq!(payload, b"payload");
        // A snapshot-magic reader must not accept a result frame, and
        // vice versa; a version bump must gate too.
        assert!(matches!(
            open_frame(&SNAPSHOT_MAGIC, 1, &bytes),
            Err(RestoreError::BadMagic)
        ));
        assert!(matches!(
            open_frame(&MAGIC_A, 2, &bytes),
            Err(RestoreError::UnsupportedVersion(1))
        ));
    }

    #[test]
    fn generic_frame_rejects_truncation_and_bit_flips() {
        const MAGIC: [u8; 8] = *b"DMKRSLT\0";
        let bytes = seal_frame(&MAGIC, 1, b"job", &[0x5A; 48]);
        for len in 0..bytes.len() {
            assert!(
                open_frame(&MAGIC, 1, &bytes[..len]).is_err(),
                "truncation to {len} bytes was accepted"
            );
        }
        for i in 0..bytes.len() {
            let mut corrupt = bytes.clone();
            corrupt[i] ^= 0x10;
            assert!(
                open_frame(&MAGIC, 1, &corrupt).is_err(),
                "bit flip at byte {i} was accepted"
            );
        }
    }

    #[test]
    fn write_atomic_replaces_and_survives_reread() {
        let dir = std::env::temp_dir().join(format!("ckpt-atomic-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("temp dir");
        let path = dir.join("a.bin");
        write_atomic(&path, b"first").expect("writes");
        assert_eq!(std::fs::read(&path).expect("readable"), b"first");
        write_atomic(&path, b"second").expect("replaces");
        assert_eq!(std::fs::read(&path).expect("readable"), b"second");
        // The temp sibling never outlives a successful write.
        assert!(!dir.join("a.bin.tmp").exists());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn config_digest_tracks_every_knob_it_covers() {
        let base = GpuConfig::fx5800();
        let mut mem = base.clone();
        mem.mem.ideal = true;
        let mut sched = base.clone();
        sched.scheduling = SchedulingModel::Warp;
        let d0 = config_digest(&base);
        assert_eq!(d0, config_digest(&base.clone()), "digest is deterministic");
        assert_ne!(d0, config_digest(&mem), "memory change must re-key");
        assert_ne!(d0, config_digest(&sched), "scheduler change must re-key");
    }

    #[test]
    fn gpu_config_roundtrips() {
        for cfg in [
            GpuConfig::tiny(),
            GpuConfig::fx5800(),
            GpuConfig::fx5800_warp_sched(),
            GpuConfig::fx5800_dmk(dmk_core::DmkConfig::paper()),
        ] {
            let mut enc = Encoder::new();
            put_gpu_config(&mut enc, &cfg);
            let bytes = enc.into_bytes();
            let mut dec = Decoder::new(&bytes);
            let back = take_gpu_config(&mut dec).expect("decodes");
            assert!(dec.is_finished());
            let mut enc2 = Encoder::new();
            put_gpu_config(&mut enc2, &back);
            assert_eq!(bytes, enc2.into_bytes(), "re-encode differs");
        }
    }

    #[test]
    fn program_roundtrips_through_snapshot_codec() {
        let src = r#"
            .kernel main
            .kernel child
            .spawnstate 16
            main:
                mov.u32 r1, %tid
                mov.u32 r2, %spawnmem
                st.spawn.u32 [r2+0], r1
                spawn $child, r2
                exit
            child:
                mov.u32 r2, %spawnmem
                ld.spawn.u32 r2, [r2+0]
                exit
        "#;
        let p = simt_isa::assemble_named("roundtrip", src).expect("assembles");
        let mut enc = Encoder::new();
        put_program(&mut enc, &p).expect("encodable");
        let bytes = enc.into_bytes();
        let mut dec = Decoder::new(&bytes);
        let back = take_program(&mut dec).expect("decodes");
        assert!(dec.is_finished());
        assert_eq!(back, p);
    }

    mod props {
        use super::super::*;
        use proptest::prelude::*;

        proptest! {
            /// The snapshot frame is lossless for arbitrary payload and
            /// meta bytes: encode → decode is the identity.
            #[test]
            fn frame_roundtrip_is_identity(
                payload in proptest::collection::vec(any::<u8>(), 0..2048),
                meta in proptest::collection::vec(any::<u8>(), 0..256),
            ) {
                let mut snap = Snapshot::from_payload(payload);
                snap.set_meta(meta);
                let bytes = snap.to_bytes();
                let back = Snapshot::from_bytes(&bytes).expect("frame roundtrip");
                prop_assert_eq!(back, snap);
            }
        }
    }
}
