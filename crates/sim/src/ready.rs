//! O(1)-amortized warp wake-up: the per-SM ready set.
//!
//! The issue stage used to scan every resident warp every cycle looking
//! for one with `ready_at <= now`. This module partitions warp slots
//! instead: slots whose warp can issue *now* live in a bitset (scanned
//! cyclically from the round-robin cursor, preserving the exact rotation
//! order of the old scan), and parked slots live in a min-heap keyed by
//! their wake cycle. Each cycle only the slots that actually wake are
//! touched.
//!
//! Heap entries are lazy: phase B may push a warp's `ready_at` further
//! out after its entry was enqueued (a memory stall resolving later than
//! the issue-time floor), so a popped entry is validated against the
//! warp's current `ready_at` and re-parked if it woke too early. The set
//! is rebuilt outright whenever warp slots shift (retirement compaction,
//! checkpoint restore) — rare events compared to cycles.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Ready/parked partition over warp slots of one SM.
#[derive(Debug, Default)]
pub(crate) struct ReadySet {
    /// Bitset over slots that may issue now (one u64 per 64 slots).
    words: Vec<u64>,
    /// Parked slots as `(wake_cycle, slot)`, earliest first.
    heap: BinaryHeap<Reverse<(u64, usize)>>,
}

impl ReadySet {
    /// Ensures the bitset covers `slots` slots.
    fn reserve(&mut self, slots: usize) {
        let words = slots.div_ceil(64).max(1);
        if self.words.len() < words {
            self.words.resize(words, 0);
        }
    }

    /// Marks `slot` issuable now.
    pub(crate) fn mark_ready(&mut self, slot: usize) {
        self.reserve(slot + 1);
        self.words[slot / 64] |= 1 << (slot % 64);
    }

    /// Removes `slot` from the ready bitset (does not park it).
    pub(crate) fn remove(&mut self, slot: usize) {
        if let Some(w) = self.words.get_mut(slot / 64) {
            *w &= !(1 << (slot % 64));
        }
    }

    /// Parks `slot` until cycle `at`.
    pub(crate) fn park(&mut self, slot: usize, at: u64) {
        self.remove(slot);
        self.heap.push(Reverse((at, slot)));
    }

    /// Moves every slot whose wake cycle has arrived into the ready
    /// bitset. `ready_at_of` reports a slot's *current* wake cycle, which
    /// may be later than the parked key (lazy entries are re-parked).
    pub(crate) fn wake(&mut self, now: u64, ready_at_of: impl Fn(usize) -> u64) {
        while let Some(&Reverse((at, slot))) = self.heap.peek() {
            if at > now {
                break;
            }
            self.heap.pop();
            let actual = ready_at_of(slot);
            if actual <= now {
                self.mark_ready(slot);
            } else {
                self.heap.push(Reverse((actual, slot)));
            }
        }
    }

    /// First ready slot at or cyclically after `start`, over `n` slots —
    /// the same candidate order as a linear `(start + k) % n` scan.
    pub(crate) fn first_from(&self, start: usize, n: usize) -> Option<usize> {
        if n == 0 {
            return None;
        }
        let start = start % n;
        self.scan_range(start, n)
            .or_else(|| self.scan_range(0, start))
    }

    /// First ready slot in `[from, to)`.
    fn scan_range(&self, from: usize, to: usize) -> Option<usize> {
        if from >= to {
            return None;
        }
        let mut wi = from / 64;
        let last = (to - 1) / 64;
        while wi <= last {
            let &word = self.words.get(wi)?;
            let mut w = word;
            if wi == from / 64 {
                w &= !0u64 << (from % 64);
            }
            if wi == last && !to.is_multiple_of(64) {
                w &= (1u64 << (to % 64)) - 1;
            }
            if w != 0 {
                return Some(wi * 64 + w.trailing_zeros() as usize);
            }
            wi += 1;
        }
        None
    }

    /// Rebuilds the whole partition from `(slot, ready_at)` pairs — used
    /// after slot indices shift (warp retirement) or a checkpoint restore.
    pub(crate) fn rebuild(&mut self, now: u64, slots: impl Iterator<Item = (usize, u64)>) {
        self.words.clear();
        self.heap.clear();
        for (slot, ready_at) in slots {
            if ready_at <= now {
                self.mark_ready(slot);
            } else {
                self.park(slot, ready_at);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rotation_order_matches_linear_scan() {
        let mut r = ReadySet::default();
        for s in [0, 2, 5] {
            r.mark_ready(s);
        }
        assert_eq!(r.first_from(0, 6), Some(0));
        assert_eq!(r.first_from(1, 6), Some(2));
        assert_eq!(r.first_from(3, 6), Some(5));
        assert_eq!(r.first_from(6, 6), Some(0), "wraps like (rr + k) % n");
        r.remove(5);
        assert_eq!(r.first_from(3, 6), Some(0), "wraparound after removal");
    }

    #[test]
    fn parked_slots_wake_at_their_cycle() {
        let mut r = ReadySet::default();
        r.mark_ready(1);
        r.park(1, 10);
        assert_eq!(r.first_from(0, 4), None);
        r.wake(9, |_| 10);
        assert_eq!(r.first_from(0, 4), None);
        r.wake(10, |_| 10);
        assert_eq!(r.first_from(0, 4), Some(1));
    }

    #[test]
    fn stale_heap_entries_are_reparked() {
        // Parked until 5, but phase B pushed the warp's ready_at to 8.
        let mut r = ReadySet::default();
        r.park(3, 5);
        r.wake(5, |_| 8);
        assert_eq!(r.first_from(0, 4), None, "woke too early");
        r.wake(8, |_| 8);
        assert_eq!(r.first_from(0, 4), Some(3));
    }

    #[test]
    fn scan_crosses_word_boundaries() {
        let mut r = ReadySet::default();
        r.mark_ready(70);
        r.mark_ready(3);
        assert_eq!(r.first_from(4, 128), Some(70));
        assert_eq!(r.first_from(71, 128), Some(3));
        r.rebuild(0, [(65, 0u64), (2, 9)].into_iter());
        assert_eq!(r.first_from(0, 128), Some(65), "slot 2 parked by rebuild");
        r.wake(9, |_| 9);
        assert_eq!(r.first_from(66, 128), Some(2));
    }
}
