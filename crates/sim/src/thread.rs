//! Per-thread (lane) execution context.

use simt_isa::codec::{CodecError, Decoder, Encoder};
use simt_isa::{Operand, Pred, Reg, Special};

/// Architectural state of one thread: registers, predicates and the
/// special registers the paper's programming model exposes.
#[derive(Debug, Clone)]
pub struct ThreadCtx {
    /// Global thread id (unique across the launch, including dynamically
    /// created threads).
    pub tid: u32,
    /// General-purpose register file (sized to the program's requirement).
    regs: Vec<u32>,
    /// Predicate registers, one bit each.
    preds: u8,
    /// The `%spawnmem` special register (paper §IV-A1).
    pub spawn_mem_addr: u32,
    /// The spawn-memory *state record* this thread's lineage owns; freed
    /// when the thread exits without having spawned a child.
    pub state_slot: Option<u32>,
    /// Whether this thread has spawned a child (its lineage continues).
    pub spawned_child: bool,
    /// Whether the thread has retired.
    pub exited: bool,
    /// Dynamic instruction count executed by this thread.
    pub instructions: u64,
}

impl ThreadCtx {
    /// Creates a fresh thread with `num_regs` zeroed registers.
    pub fn new(tid: u32, num_regs: u32) -> Self {
        ThreadCtx {
            tid,
            regs: vec![0; num_regs as usize],
            preds: 0,
            spawn_mem_addr: 0,
            state_slot: None,
            spawned_child: false,
            exited: false,
            instructions: 0,
        }
    }

    /// Reads register `r` (unwritten registers read 0 even beyond the
    /// allocated file, for robustness).
    pub fn reg(&self, r: Reg) -> u32 {
        self.regs.get(r.0 as usize).copied().unwrap_or(0)
    }

    /// Writes register `r`, growing the file if the program under-declared.
    pub fn set_reg(&mut self, r: Reg, v: u32) {
        let i = r.0 as usize;
        if self.regs.len() <= i {
            self.regs.resize(i + 1, 0);
        }
        self.regs[i] = v;
    }

    /// Reads predicate `p`.
    pub fn pred(&self, p: Pred) -> bool {
        (self.preds >> p.0) & 1 == 1
    }

    /// Writes predicate `p`.
    pub fn set_pred(&mut self, p: Pred, v: bool) {
        if v {
            self.preds |= 1 << p.0;
        } else {
            self.preds &= !(1 << p.0);
        }
    }

    /// Evaluates an operand against this context.
    pub fn operand(&self, o: Operand) -> u32 {
        match o {
            Operand::Reg(r) => self.reg(r),
            Operand::Imm(v) => v,
        }
    }

    /// Evaluates a special register given the lane's machine coordinates.
    pub fn special(&self, s: Special, lane: u32, warp_id: u32, sm_id: u32, ntid: u32) -> u32 {
        match s {
            Special::Tid => self.tid,
            Special::LaneId => lane,
            Special::WarpId => warp_id,
            Special::SmId => sm_id,
            Special::NTid => ntid,
            Special::SpawnMem => self.spawn_mem_addr,
        }
    }

    /// Serializes this thread's complete architectural state for a
    /// simulator checkpoint.
    pub(crate) fn encode_state(&self, enc: &mut Encoder) {
        enc.put_u32(self.tid);
        enc.put_u32_slice(&self.regs);
        enc.put_u8(self.preds);
        enc.put_u32(self.spawn_mem_addr);
        enc.put_bool(self.state_slot.is_some());
        if let Some(s) = self.state_slot {
            enc.put_u32(s);
        }
        enc.put_bool(self.spawned_child);
        enc.put_bool(self.exited);
        enc.put_u64(self.instructions);
    }

    /// Rebuilds a thread from bytes written by
    /// [`ThreadCtx::encode_state`].
    pub(crate) fn restore_state(dec: &mut Decoder<'_>) -> Result<Self, CodecError> {
        let tid = dec.take_u32()?;
        let regs = dec.take_u32_vec()?;
        let preds = dec.take_u8()?;
        let spawn_mem_addr = dec.take_u32()?;
        let state_slot = if dec.take_bool()? {
            Some(dec.take_u32()?)
        } else {
            None
        };
        Ok(ThreadCtx {
            tid,
            regs,
            preds,
            spawn_mem_addr,
            state_slot,
            spawned_child: dec.take_bool()?,
            exited: dec.take_bool()?,
            instructions: dec.take_u64()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registers_default_to_zero() {
        let t = ThreadCtx::new(7, 4);
        assert_eq!(t.reg(Reg(2)), 0);
        assert_eq!(t.reg(Reg(60)), 0, "beyond file also reads zero");
    }

    #[test]
    fn register_roundtrip_and_growth() {
        let mut t = ThreadCtx::new(0, 2);
        t.set_reg(Reg(1), 5);
        assert_eq!(t.reg(Reg(1)), 5);
        t.set_reg(Reg(10), 9);
        assert_eq!(t.reg(Reg(10)), 9);
    }

    #[test]
    fn predicates_are_independent_bits() {
        let mut t = ThreadCtx::new(0, 1);
        t.set_pred(Pred(0), true);
        t.set_pred(Pred(3), true);
        assert!(t.pred(Pred(0)));
        assert!(!t.pred(Pred(1)));
        assert!(t.pred(Pred(3)));
        t.set_pred(Pred(0), false);
        assert!(!t.pred(Pred(0)));
        assert!(t.pred(Pred(3)));
    }

    #[test]
    fn specials_resolve() {
        let mut t = ThreadCtx::new(42, 1);
        t.spawn_mem_addr = 0x100;
        assert_eq!(t.special(Special::Tid, 3, 2, 1, 960), 42);
        assert_eq!(t.special(Special::LaneId, 3, 2, 1, 960), 3);
        assert_eq!(t.special(Special::WarpId, 3, 2, 1, 960), 2);
        assert_eq!(t.special(Special::SmId, 3, 2, 1, 960), 1);
        assert_eq!(t.special(Special::NTid, 3, 2, 1, 960), 960);
        assert_eq!(t.special(Special::SpawnMem, 3, 2, 1, 960), 0x100);
    }

    #[test]
    fn operand_evaluation() {
        let mut t = ThreadCtx::new(0, 4);
        t.set_reg(Reg(2), 77);
        assert_eq!(t.operand(Operand::Reg(Reg(2))), 77);
        assert_eq!(t.operand(Operand::Imm(5)), 5);
    }
}
