//! Per-thread (lane) execution context.

use simt_isa::codec::{CodecError, Decoder, Encoder};
use simt_isa::{eval_alu, eval_cmp, AluOp, CmpOp, Operand, Pred, Reg, Special};

/// An operand pre-resolved against the warp's register layout, so the
/// warp-wide execution loops do the operand-kind match and the
/// register-vs-stride bounds check once per instruction instead of once
/// per lane.
#[derive(Clone, Copy)]
enum Src {
    /// In-file register: offset within a lane's register block.
    Idx(usize),
    /// Immediate value.
    Imm(u32),
    /// Register beyond the file: reads 0 (see [`LaneState::reg`]).
    Zero,
}

/// Architectural state of one thread: registers, predicates and the
/// special registers the paper's programming model exposes.
#[derive(Debug, Clone)]
pub struct ThreadCtx {
    /// Global thread id (unique across the launch, including dynamically
    /// created threads).
    pub tid: u32,
    /// General-purpose register file (sized to the program's requirement).
    regs: Vec<u32>,
    /// Predicate registers, one bit each.
    preds: u8,
    /// The `%spawnmem` special register (paper §IV-A1).
    pub spawn_mem_addr: u32,
    /// The spawn-memory *state record* this thread's lineage owns; freed
    /// when the thread exits without having spawned a child.
    pub state_slot: Option<u32>,
    /// Whether this thread has spawned a child (its lineage continues).
    pub spawned_child: bool,
    /// Whether the thread has retired.
    pub exited: bool,
    /// Dynamic instruction count executed by this thread.
    pub instructions: u64,
}

impl ThreadCtx {
    /// Creates a fresh thread with `num_regs` zeroed registers.
    pub fn new(tid: u32, num_regs: u32) -> Self {
        ThreadCtx {
            tid,
            regs: vec![0; num_regs as usize],
            preds: 0,
            spawn_mem_addr: 0,
            state_slot: None,
            spawned_child: false,
            exited: false,
            instructions: 0,
        }
    }

    /// Reads register `r` (unwritten registers read 0 even beyond the
    /// allocated file, for robustness).
    pub fn reg(&self, r: Reg) -> u32 {
        self.regs.get(r.0 as usize).copied().unwrap_or(0)
    }

    /// Writes register `r`, growing the file if the program under-declared.
    pub fn set_reg(&mut self, r: Reg, v: u32) {
        let i = r.0 as usize;
        if self.regs.len() <= i {
            self.regs.resize(i + 1, 0);
        }
        self.regs[i] = v;
    }

    /// Reads predicate `p`.
    pub fn pred(&self, p: Pred) -> bool {
        (self.preds >> p.0) & 1 == 1
    }

    /// Writes predicate `p`.
    pub fn set_pred(&mut self, p: Pred, v: bool) {
        if v {
            self.preds |= 1 << p.0;
        } else {
            self.preds &= !(1 << p.0);
        }
    }

    /// Evaluates an operand against this context.
    pub fn operand(&self, o: Operand) -> u32 {
        match o {
            Operand::Reg(r) => self.reg(r),
            Operand::Imm(v) => v,
        }
    }

    /// Evaluates a special register given the lane's machine coordinates.
    pub fn special(&self, s: Special, lane: u32, warp_id: u32, sm_id: u32, ntid: u32) -> u32 {
        match s {
            Special::Tid => self.tid,
            Special::LaneId => lane,
            Special::WarpId => warp_id,
            Special::SmId => sm_id,
            Special::NTid => ntid,
            Special::SpawnMem => self.spawn_mem_addr,
        }
    }
}

/// Struct-of-arrays per-lane thread state for one warp.
///
/// The hot loops of [`crate::sm::Sm`] — guard-mask evaluation, ALU
/// execution, address generation — walk the lanes of a warp every issued
/// instruction. Storing lanes as `Vec<Option<ThreadCtx>>` made every one
/// of those walks chase an `Option` discriminant and a heap pointer per
/// lane; here the same state lives in dense parallel arrays indexed by
/// lane, with populated/exited/spawned lane *sets* kept as bitmasks so
/// the inner loops iterate set bits instead of testing discriminants.
///
/// Registers are a single flat `lanes × stride` array. The stride starts
/// at the program's declared register count; a write beyond it (programs
/// may under-declare) re-packs the block to a larger stride for the whole
/// warp. Reads beyond the stride return 0, exactly like
/// [`ThreadCtx::reg`] beyond the file.
#[derive(Debug, Clone)]
pub struct LaneState {
    warp_size: u32,
    regs_stride: u32,
    /// Lane `i` holds a thread (populated lanes of a partial warp).
    populated: u64,
    /// Lane `i`'s thread has retired.
    exited: u64,
    /// Lane `i`'s thread has spawned a child (its lineage continues).
    spawned: u64,
    /// Lane `i`'s thread owns a spawn-memory state record.
    has_slot: u64,
    tid: Vec<u32>,
    /// Predicate registers stored as bit-planes: `pred_planes[p]` holds
    /// predicate `p` of every lane, one bit per lane. A guard mask is then
    /// a single AND against the active mask instead of a per-lane bit
    /// test. The checkpoint codec still reads/writes one `u8` per lane
    /// (gathered/scattered at the boundary) so snapshot bytes are
    /// unchanged.
    pred_planes: [u64; 8],
    spawn_mem_addr: Vec<u32>,
    state_slot: Vec<u32>,
    instructions: Vec<u64>,
    /// Flat register file in *register-major* order: register `r` of lane
    /// `i` lives at `regs[r * warp_size + i]`. A warp-wide operation then
    /// reads each operand from one contiguous `warp_size`-word plane
    /// (cache-dense, auto-vectorizable) instead of striding `stride`
    /// words between lanes, and growing the stride appends fresh planes
    /// without re-packing. The checkpoint codec still writes lane-major
    /// bytes (gathered at the boundary) so snapshot bytes are unchanged.
    regs: Vec<u32>,
}

impl LaneState {
    fn bit(lane: usize) -> u64 {
        1u64 << lane
    }

    /// Builds lane state from admission-time thread records. Lanes
    /// `threads.len()..warp_size` stay unpopulated.
    ///
    /// # Panics
    ///
    /// Panics if more threads than `warp_size` are supplied.
    pub fn from_threads(warp_size: u32, threads: Vec<ThreadCtx>) -> Self {
        let n = warp_size as usize;
        assert!(threads.len() <= n, "more threads than lanes");
        let regs_stride = threads
            .iter()
            .map(|t| t.regs.len() as u32)
            .max()
            .unwrap_or(0);
        let mut s = LaneState {
            warp_size,
            regs_stride,
            populated: 0,
            exited: 0,
            spawned: 0,
            has_slot: 0,
            tid: vec![0; n],
            pred_planes: [0; 8],
            spawn_mem_addr: vec![0; n],
            state_slot: vec![0; n],
            instructions: vec![0; n],
            regs: vec![0; n * regs_stride as usize],
        };
        for (lane, t) in threads.into_iter().enumerate() {
            s.populated |= Self::bit(lane);
            if t.exited {
                s.exited |= Self::bit(lane);
            }
            if t.spawned_child {
                s.spawned |= Self::bit(lane);
            }
            s.tid[lane] = t.tid;
            s.scatter_preds(lane, t.preds);
            s.spawn_mem_addr[lane] = t.spawn_mem_addr;
            if let Some(slot) = t.state_slot {
                s.has_slot |= Self::bit(lane);
                s.state_slot[lane] = slot;
            }
            s.instructions[lane] = t.instructions;
            for (r, &v) in t.regs.iter().enumerate() {
                s.regs[r * n + lane] = v;
            }
        }
        s
    }

    /// Lanes that hold a thread (exited or not).
    pub fn populated_mask(&self) -> u64 {
        self.populated
    }

    /// Lanes that hold a not-yet-retired thread.
    pub fn live_mask(&self) -> u64 {
        self.populated & !self.exited
    }

    /// Whether lane `lane` holds a thread.
    pub fn is_populated(&self, lane: usize) -> bool {
        self.populated & Self::bit(lane) != 0
    }

    /// Whether lane `lane`'s thread has retired.
    pub fn is_exited(&self, lane: usize) -> bool {
        self.exited & Self::bit(lane) != 0
    }

    /// Marks the lanes in `mask` retired.
    pub fn exit_lanes(&mut self, mask: u64) {
        self.exited |= mask & self.populated;
    }

    /// Whether lane `lane`'s thread has spawned a child.
    pub fn spawned_child(&self, lane: usize) -> bool {
        self.spawned & Self::bit(lane) != 0
    }

    /// Records that lane `lane`'s thread spawned a child.
    pub fn set_spawned_child(&mut self, lane: usize) {
        self.spawned |= Self::bit(lane);
    }

    /// Lane `lane`'s global thread id.
    pub fn tid(&self, lane: usize) -> u32 {
        self.tid[lane]
    }

    /// Lane `lane`'s `%spawnmem` special register.
    pub fn spawn_mem_addr(&self, lane: usize) -> u32 {
        self.spawn_mem_addr[lane]
    }

    /// Sets lane `lane`'s `%spawnmem` special register.
    pub fn set_spawn_mem_addr(&mut self, lane: usize, addr: u32) {
        self.spawn_mem_addr[lane] = addr;
    }

    /// Lane `lane`'s spawn-memory state record, if it still owns one.
    pub fn state_slot(&self, lane: usize) -> Option<u32> {
        (self.has_slot & Self::bit(lane) != 0).then(|| self.state_slot[lane])
    }

    /// Takes lane `lane`'s state record (freeing it is the caller's job).
    pub fn take_state_slot(&mut self, lane: usize) -> Option<u32> {
        let slot = self.state_slot(lane);
        self.has_slot &= !Self::bit(lane);
        slot
    }

    /// Dynamic instruction count executed by lane `lane`'s thread.
    pub fn instructions(&self, lane: usize) -> u64 {
        self.instructions[lane]
    }

    /// Charges one executed instruction to every lane in `mask`.
    pub fn add_instruction(&mut self, mask: u64) {
        let mut m = mask & self.populated;
        if m == self.populated && self.populated.count_ones() as usize == self.instructions.len() {
            // Full warp (the common case): one contiguous pass.
            for v in &mut self.instructions {
                *v += 1;
            }
            return;
        }
        while m != 0 {
            let lane = m.trailing_zeros() as usize;
            m &= m - 1;
            self.instructions[lane] += 1;
        }
    }

    /// Reads register `r` of lane `lane` (beyond the file reads 0, like
    /// [`ThreadCtx::reg`]).
    pub fn reg(&self, lane: usize, r: Reg) -> u32 {
        let i = r.0 as u32;
        if i >= self.regs_stride {
            return 0;
        }
        self.regs[i as usize * self.warp_size as usize + lane]
    }

    /// Writes register `r` of lane `lane`, widening the file if the
    /// program under-declared its register usage.
    pub fn set_reg(&mut self, lane: usize, r: Reg, v: u32) {
        let i = r.0 as u32;
        if i >= self.regs_stride {
            self.grow_stride(i + 1);
        }
        self.regs[i as usize * self.warp_size as usize + lane] = v;
    }

    /// Widens the register file (rare: only when a program writes a
    /// register it never declared). Register-major layout makes this an
    /// append of fresh zeroed planes; existing planes stay in place.
    fn grow_stride(&mut self, stride: u32) {
        self.regs
            .resize(stride as usize * self.warp_size as usize, 0);
        self.regs_stride = stride;
    }

    /// Reads predicate `p` of lane `lane`.
    pub fn pred(&self, lane: usize, p: Pred) -> bool {
        (self.pred_planes[p.0 as usize] >> lane) & 1 == 1
    }

    /// Writes predicate `p` of lane `lane`.
    pub fn set_pred(&mut self, lane: usize, p: Pred, v: bool) {
        let bit = Self::bit(lane);
        let plane = &mut self.pred_planes[p.0 as usize];
        *plane = (*plane & !bit) | (u64::from(v) << lane);
    }

    /// Lanes whose guard `@p` / `@!p` passes: `pred(lane, p) != negate`
    /// for every lane at once.
    pub fn guard_mask(&self, p: Pred, negate: bool) -> u64 {
        let plane = self.pred_planes[p.0 as usize];
        if negate {
            !plane
        } else {
            plane
        }
    }

    /// Gathers lane `lane`'s predicates into the packed per-thread byte
    /// the checkpoint codec (and `ThreadCtx`) uses.
    fn gather_preds(&self, lane: usize) -> u8 {
        let mut byte = 0u8;
        for (p, plane) in self.pred_planes.iter().enumerate() {
            byte |= (((plane >> lane) & 1) as u8) << p;
        }
        byte
    }

    /// Scatters a packed per-thread predicate byte into the bit-planes.
    fn scatter_preds(&mut self, lane: usize, byte: u8) {
        let bit = Self::bit(lane);
        for (p, plane) in self.pred_planes.iter_mut().enumerate() {
            *plane = (*plane & !bit) | (u64::from((byte >> p) & 1) << lane);
        }
    }

    /// Evaluates an operand against lane `lane`.
    pub fn operand(&self, lane: usize, o: Operand) -> u32 {
        match o {
            Operand::Reg(r) => self.reg(lane, r),
            Operand::Imm(v) => v,
        }
    }

    /// Evaluates a special register for lane `lane`.
    pub fn special(&self, lane: usize, s: Special, warp_id: u32, sm_id: u32, ntid: u32) -> u32 {
        match s {
            Special::Tid => self.tid[lane],
            Special::LaneId => lane as u32,
            Special::WarpId => warp_id,
            Special::SmId => sm_id,
            Special::NTid => ntid,
            Special::SpawnMem => self.spawn_mem_addr[lane],
        }
    }

    #[inline]
    fn resolve(&self, o: Operand) -> Src {
        match o {
            Operand::Imm(v) => Src::Imm(v),
            Operand::Reg(r) if (r.0 as u32) < self.regs_stride => {
                // Base of the operand's register plane.
                Src::Idx(r.0 as usize * self.warp_size as usize)
            }
            Operand::Reg(_) => Src::Zero,
        }
    }

    #[inline]
    fn load(&self, lane: usize, s: Src) -> u32 {
        match s {
            Src::Idx(plane) => self.regs[plane + lane],
            Src::Imm(v) => v,
            Src::Zero => 0,
        }
    }

    /// Brings destination register `d` inside the file, growing the
    /// stride up-front so a per-lane loop can write unchecked. Growing
    /// before the loop (rather than at the first lane's `set_reg`, as
    /// the scalar path does) is equivalent: lanes only read their own
    /// registers, and a read beyond the old stride returned 0 exactly
    /// as the grown block's fresh zeros do. Returns the base of `d`'s
    /// register plane.
    #[inline]
    fn ensure_dst(&mut self, d: Reg) -> usize {
        let i = d.0 as u32;
        if i >= self.regs_stride {
            self.grow_stride(i + 1);
        }
        i as usize * self.warp_size as usize
    }

    /// Whether `bits` covers every lane of the warp (full-warp issue, the
    /// common case) so a warp op can run one contiguous pass over each
    /// register plane instead of iterating mask bits.
    #[inline]
    fn is_full(&self, bits: u64) -> bool {
        bits.count_ones() == self.warp_size
    }

    /// Executes `mov d, a` on every populated lane in `mask`.
    pub fn mov_warp(&mut self, mask: u64, d: Reg, a: Operand) {
        let mut bits = mask & self.populated;
        if bits == 0 {
            return;
        }
        let db = self.ensure_dst(d);
        let src = self.resolve(a);
        if self.is_full(bits) {
            for lane in 0..self.warp_size as usize {
                self.regs[db + lane] = self.load(lane, src);
            }
            return;
        }
        while bits != 0 {
            let lane = bits.trailing_zeros() as usize;
            bits &= bits - 1;
            self.regs[db + lane] = self.load(lane, src);
        }
    }

    /// Executes `op d, a, b, c` on every populated lane in `mask`.
    pub fn alu_warp(&mut self, mask: u64, op: AluOp, d: Reg, a: Operand, b: Operand, c: Operand) {
        let mut bits = mask & self.populated;
        if bits == 0 {
            return;
        }
        let db = self.ensure_dst(d);
        let (sa, sb, sc) = (self.resolve(a), self.resolve(b), self.resolve(c));
        if self.is_full(bits) {
            for lane in 0..self.warp_size as usize {
                let r = eval_alu(
                    op,
                    self.load(lane, sa),
                    self.load(lane, sb),
                    self.load(lane, sc),
                );
                self.regs[db + lane] = r;
            }
            return;
        }
        while bits != 0 {
            let lane = bits.trailing_zeros() as usize;
            bits &= bits - 1;
            let r = eval_alu(
                op,
                self.load(lane, sa),
                self.load(lane, sb),
                self.load(lane, sc),
            );
            self.regs[db + lane] = r;
        }
    }

    /// Executes `setp.cmp p, a, b` on every populated lane in `mask`.
    pub fn setp_warp(&mut self, mask: u64, cmp: CmpOp, p: Pred, a: Operand, b: Operand) {
        let mut bits = mask & self.populated;
        if bits == 0 {
            return;
        }
        let (sa, sb) = (self.resolve(a), self.resolve(b));
        let pi = p.0 as usize;
        let mut plane = self.pred_planes[pi];
        if self.is_full(bits) {
            // Full warp: rebuild the whole bit-plane from contiguous
            // operand reads (no per-lane masking of the old plane needed).
            plane = 0;
            for lane in 0..self.warp_size as usize {
                let r = eval_cmp(cmp, self.load(lane, sa), self.load(lane, sb));
                plane |= u64::from(r) << lane;
            }
            self.pred_planes[pi] = plane;
            return;
        }
        while bits != 0 {
            let lane = bits.trailing_zeros() as usize;
            bits &= bits - 1;
            let r = eval_cmp(cmp, self.load(lane, sa), self.load(lane, sb));
            let bit = Self::bit(lane);
            plane = (plane & !bit) | (u64::from(r) << lane);
        }
        self.pred_planes[pi] = plane;
    }

    /// Executes `selp d, a, b, p` on every populated lane in `mask`.
    pub fn selp_warp(&mut self, mask: u64, d: Reg, a: Operand, b: Operand, p: Pred) {
        let mut bits = mask & self.populated;
        if bits == 0 {
            return;
        }
        let db = self.ensure_dst(d);
        let (sa, sb) = (self.resolve(a), self.resolve(b));
        let plane = self.pred_planes[p.0 as usize];
        if self.is_full(bits) {
            // Full warp: contiguous branchless select over the operand
            // planes (the dominant instruction in the renderer's
            // min/max-style inner loops).
            for lane in 0..self.warp_size as usize {
                let t = self.load(lane, sa);
                let f = self.load(lane, sb);
                let m = ((plane >> lane) & 1).wrapping_neg() as u32;
                self.regs[db + lane] = (t & m) | (f & !m);
            }
            return;
        }
        while bits != 0 {
            let lane = bits.trailing_zeros() as usize;
            bits &= bits - 1;
            let v = if (plane >> lane) & 1 == 1 {
                self.load(lane, sa)
            } else {
                self.load(lane, sb)
            };
            self.regs[db + lane] = v;
        }
    }

    /// Executes `mov d, %special` on every populated lane in `mask`.
    pub fn special_warp(
        &mut self,
        mask: u64,
        d: Reg,
        s: Special,
        warp_id: u32,
        sm_id: u32,
        ntid: u32,
    ) {
        let mut bits = mask & self.populated;
        if bits == 0 {
            return;
        }
        let db = self.ensure_dst(d);
        while bits != 0 {
            let lane = bits.trailing_zeros() as usize;
            bits &= bits - 1;
            let v = match s {
                Special::Tid => self.tid[lane],
                Special::LaneId => lane as u32,
                Special::WarpId => warp_id,
                Special::SmId => sm_id,
                Special::NTid => ntid,
                Special::SpawnMem => self.spawn_mem_addr[lane],
            };
            self.regs[db + lane] = v;
        }
    }

    /// Serializes the lane arrays for a simulator checkpoint (snapshot
    /// format v3: one SoA block per warp instead of per-lane
    /// `Option<ThreadCtx>` records).
    pub(crate) fn encode_state(&self, enc: &mut Encoder) {
        enc.put_u32(self.warp_size);
        enc.put_u32(self.regs_stride);
        enc.put_u64(self.populated);
        enc.put_u64(self.exited);
        enc.put_u64(self.spawned);
        enc.put_u64(self.has_slot);
        enc.put_u32_slice(&self.tid);
        for lane in 0..self.warp_size as usize {
            enc.put_u8(self.gather_preds(lane));
        }
        enc.put_u32_slice(&self.spawn_mem_addr);
        enc.put_u32_slice(&self.state_slot);
        for &i in &self.instructions {
            enc.put_u64(i);
        }
        // Snapshot bytes stay lane-major (format v3) regardless of the
        // in-memory register-major layout.
        let n = self.warp_size as usize;
        let st = self.regs_stride as usize;
        let mut lane_major = Vec::with_capacity(n * st);
        for lane in 0..n {
            for r in 0..st {
                lane_major.push(self.regs[r * n + lane]);
            }
        }
        enc.put_u32_slice(&lane_major);
    }

    /// Rebuilds lane state written by [`LaneState::encode_state`].
    pub(crate) fn restore_state(dec: &mut Decoder<'_>) -> Result<Self, CodecError> {
        let warp_size = dec.take_u32()?;
        if warp_size == 0 || warp_size > 64 {
            return Err(CodecError::BadTag {
                what: "lane-state warp size",
                tag: u64::from(warp_size),
            });
        }
        let regs_stride = dec.take_u32()?;
        let populated = dec.take_u64()?;
        let exited = dec.take_u64()?;
        let spawned = dec.take_u64()?;
        let has_slot = dec.take_u64()?;
        let n = warp_size as usize;
        let tid = dec.take_u32_vec()?;
        let mut pred_bytes = Vec::with_capacity(n);
        for _ in 0..n {
            pred_bytes.push(dec.take_u8()?);
        }
        let spawn_mem_addr = dec.take_u32_vec()?;
        let state_slot = dec.take_u32_vec()?;
        let mut instructions = Vec::with_capacity(n);
        for _ in 0..n {
            instructions.push(dec.take_u64()?);
        }
        let regs = dec.take_u32_vec()?;
        for (what, len) in [
            ("lane-state tids", tid.len()),
            ("lane-state spawn addrs", spawn_mem_addr.len()),
            ("lane-state slots", state_slot.len()),
        ] {
            if len != n {
                return Err(CodecError::BadTag {
                    what,
                    tag: len as u64,
                });
            }
        }
        if regs.len() != n * regs_stride as usize {
            return Err(CodecError::BadTag {
                what: "lane-state register block",
                tag: regs.len() as u64,
            });
        }
        // Snapshot bytes are lane-major; scatter into the in-memory
        // register-major layout.
        let st = regs_stride as usize;
        let mut reg_major = vec![0u32; regs.len()];
        for lane in 0..n {
            for r in 0..st {
                reg_major[r * n + lane] = regs[lane * st + r];
            }
        }
        let regs = reg_major;
        let mut s = LaneState {
            warp_size,
            regs_stride,
            populated,
            exited,
            spawned,
            has_slot,
            tid,
            pred_planes: [0; 8],
            spawn_mem_addr,
            state_slot,
            instructions,
            regs,
        };
        for (lane, &byte) in pred_bytes.iter().enumerate() {
            s.scatter_preds(lane, byte);
        }
        Ok(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registers_default_to_zero() {
        let t = ThreadCtx::new(7, 4);
        assert_eq!(t.reg(Reg(2)), 0);
        assert_eq!(t.reg(Reg(60)), 0, "beyond file also reads zero");
    }

    #[test]
    fn register_roundtrip_and_growth() {
        let mut t = ThreadCtx::new(0, 2);
        t.set_reg(Reg(1), 5);
        assert_eq!(t.reg(Reg(1)), 5);
        t.set_reg(Reg(10), 9);
        assert_eq!(t.reg(Reg(10)), 9);
    }

    #[test]
    fn predicates_are_independent_bits() {
        let mut t = ThreadCtx::new(0, 1);
        t.set_pred(Pred(0), true);
        t.set_pred(Pred(3), true);
        assert!(t.pred(Pred(0)));
        assert!(!t.pred(Pred(1)));
        assert!(t.pred(Pred(3)));
        t.set_pred(Pred(0), false);
        assert!(!t.pred(Pred(0)));
        assert!(t.pred(Pred(3)));
    }

    #[test]
    fn specials_resolve() {
        let mut t = ThreadCtx::new(42, 1);
        t.spawn_mem_addr = 0x100;
        assert_eq!(t.special(Special::Tid, 3, 2, 1, 960), 42);
        assert_eq!(t.special(Special::LaneId, 3, 2, 1, 960), 3);
        assert_eq!(t.special(Special::WarpId, 3, 2, 1, 960), 2);
        assert_eq!(t.special(Special::SmId, 3, 2, 1, 960), 1);
        assert_eq!(t.special(Special::NTid, 3, 2, 1, 960), 960);
        assert_eq!(t.special(Special::SpawnMem, 3, 2, 1, 960), 0x100);
    }

    #[test]
    fn operand_evaluation() {
        let mut t = ThreadCtx::new(0, 4);
        t.set_reg(Reg(2), 77);
        assert_eq!(t.operand(Operand::Reg(Reg(2))), 77);
        assert_eq!(t.operand(Operand::Imm(5)), 5);
    }

    fn partial_warp() -> LaneState {
        // 3 threads in a 4-lane warp; lane 3 unpopulated.
        let mut threads = Vec::new();
        for tid in 0..3u32 {
            let mut t = ThreadCtx::new(tid, 2);
            t.set_reg(Reg(1), tid * 10);
            threads.push(t);
        }
        LaneState::from_threads(4, threads)
    }

    #[test]
    fn lane_masks_track_population_and_exits() {
        let mut l = partial_warp();
        assert_eq!(l.populated_mask(), 0b0111);
        assert_eq!(l.live_mask(), 0b0111);
        l.exit_lanes(0b1010); // lane 3 unpopulated: must not leak in
        assert_eq!(l.live_mask(), 0b0101);
        assert!(l.is_exited(1));
        assert!(!l.is_exited(0));
        assert!(l.is_populated(1), "exited lanes stay populated");
    }

    #[test]
    fn lane_registers_grow_stride_per_warp() {
        let mut l = partial_warp();
        assert_eq!(l.reg(0, Reg(1)), 0);
        assert_eq!(l.reg(2, Reg(1)), 20);
        assert_eq!(l.reg(2, Reg(7)), 0, "beyond the file reads zero");
        l.set_reg(1, Reg(7), 99); // forces a stride re-pack
        assert_eq!(l.reg(1, Reg(7)), 99);
        assert_eq!(l.reg(2, Reg(1)), 20, "re-pack preserved other lanes");
        assert_eq!(l.reg(0, Reg(7)), 0);
    }

    #[test]
    fn lane_state_slots_and_instruction_counts() {
        let mut threads = vec![ThreadCtx::new(0, 1), ThreadCtx::new(1, 1)];
        threads[1].state_slot = Some(0x40);
        let mut l = LaneState::from_threads(4, threads);
        assert_eq!(l.state_slot(0), None);
        assert_eq!(l.take_state_slot(1), Some(0x40));
        assert_eq!(l.take_state_slot(1), None, "slot taken once");
        l.add_instruction(0b1111); // only populated lanes are charged
        l.add_instruction(0b0001);
        assert_eq!(l.instructions(0), 2);
        assert_eq!(l.instructions(1), 1);
    }

    #[test]
    fn lane_state_codec_round_trips() {
        let mut l = partial_warp();
        l.exit_lanes(0b0010);
        l.set_spawned_child(0);
        l.set_spawn_mem_addr(2, 0x80);
        l.set_pred(0, Pred(2), true);
        l.add_instruction(0b0101);
        let mut enc = Encoder::new();
        l.encode_state(&mut enc);
        let bytes = enc.into_bytes();
        let mut dec = Decoder::new(&bytes);
        let r = LaneState::restore_state(&mut dec).expect("round-trips");
        assert!(dec.is_finished());
        assert_eq!(r.populated_mask(), l.populated_mask());
        assert_eq!(r.live_mask(), l.live_mask());
        assert!(r.spawned_child(0));
        assert_eq!(r.spawn_mem_addr(2), 0x80);
        assert!(r.pred(0, Pred(2)));
        assert_eq!(r.instructions(0), 1);
        assert_eq!(r.reg(2, Reg(1)), 20);
    }

    #[test]
    fn lane_state_codec_rejects_bad_shapes() {
        let mut enc = Encoder::new();
        partial_warp().encode_state(&mut enc);
        let good = enc.into_bytes();
        // Corrupt the warp size (first u32) to something out of range.
        let mut bad = good.clone();
        bad[0] = 0xFF;
        let mut dec = Decoder::new(&bad);
        assert!(LaneState::restore_state(&mut dec).is_err());
        // Truncation is also an error, not a partial decode.
        let mut dec = Decoder::new(&good[..good.len() - 3]);
        assert!(LaneState::restore_state(&mut dec).is_err());
    }
}
