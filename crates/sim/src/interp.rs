//! Functional single-thread interpreter.
//!
//! Runs one thread's instruction stream to completion against the
//! functional memory image, with no timing. Used as a correctness oracle
//! for the cycle-level pipeline, to count per-thread dynamic instructions
//! for the MIMD-theoretical model (paper Fig. 10), and by the bandwidth
//! analytics behind Table IV.

use crate::thread::ThreadCtx;
use simt_isa::{eval_alu, eval_cmp, Instr, Program, Reg, Space};
use simt_mem::MemoryFabric;
use std::fmt;

/// Why interpretation failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum InterpError {
    /// The thread executed `spawn`, which has no meaning for a lone
    /// functional thread (the paper's MIMD/PDOM baselines run the
    /// traditional, spawn-free kernel).
    SpawnUnsupported {
        /// PC of the spawn instruction.
        pc: usize,
    },
    /// The instruction budget was exhausted (runaway loop guard).
    Runaway {
        /// The budget that was exceeded.
        budget: u64,
    },
    /// An illegal memory access (the functional analogue of a warp trap).
    Memory {
        /// PC of the faulting instruction.
        pc: usize,
        /// The underlying memory fault.
        fault: simt_mem::MemFault,
    },
}

impl fmt::Display for InterpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InterpError::SpawnUnsupported { pc } => {
                write!(
                    f,
                    "spawn at pc {pc} is not supported by the functional interpreter"
                )
            }
            InterpError::Runaway { budget } => {
                write!(f, "thread exceeded the {budget}-instruction budget")
            }
            InterpError::Memory { pc, fault } => {
                write!(f, "memory fault at pc {pc}: {fault}")
            }
        }
    }
}

impl std::error::Error for InterpError {}

/// Result of interpreting one thread.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct InterpResult {
    /// Dynamic instructions executed.
    pub instructions: u64,
    /// Load instructions executed.
    pub loads: u64,
    /// Store instructions executed.
    pub stores: u64,
    /// Bytes read (all spaces).
    pub bytes_read: u64,
    /// Bytes written (all spaces).
    pub bytes_written: u64,
}

/// A functional interpreter bound to a program and memory image.
#[derive(Debug)]
pub struct ThreadInterp<'a> {
    program: &'a Program,
    /// Per-thread scratch standing in for shared memory (functional only).
    shared_scratch: Vec<u32>,
    /// Instruction budget per thread.
    pub budget: u64,
    /// `%ntid` value reported to the thread.
    pub ntid: u32,
}

impl<'a> ThreadInterp<'a> {
    /// Creates an interpreter for `program`.
    pub fn new(program: &'a Program, ntid: u32) -> Self {
        ThreadInterp {
            program,
            shared_scratch: vec![0; 4096],
            budget: 50_000_000,
            ntid,
        }
    }

    /// Runs thread `tid` from `entry_pc` to `exit`.
    ///
    /// # Errors
    ///
    /// Returns [`InterpError::SpawnUnsupported`] on `spawn` and
    /// [`InterpError::Runaway`] if the budget is exceeded.
    pub fn run_thread(
        &mut self,
        tid: u32,
        entry_pc: usize,
        mem: &mut MemoryFabric,
    ) -> Result<InterpResult, InterpError> {
        let mut t = ThreadCtx::new(tid, self.program.resource_usage().registers.max(1));
        let mut pc = entry_pc;
        let mut res = InterpResult::default();
        loop {
            if res.instructions >= self.budget {
                return Err(InterpError::Runaway {
                    budget: self.budget,
                });
            }
            let instr = self.program.fetch(pc);
            res.instructions += 1;
            let pass = match instr.guard {
                None => true,
                Some(g) => t.pred(g.pred) != g.negate,
            };
            match instr.op {
                Instr::Alu { op, d, a, b, c } => {
                    if pass {
                        let v = eval_alu(op, t.operand(a), t.operand(b), t.operand(c));
                        t.set_reg(d, v);
                    }
                    pc += 1;
                }
                Instr::Setp { cmp, p, a, b } => {
                    if pass {
                        let v = eval_cmp(cmp, t.operand(a), t.operand(b));
                        t.set_pred(p, v);
                    }
                    pc += 1;
                }
                Instr::Selp { d, a, b, p } => {
                    if pass {
                        let v = if t.pred(p) {
                            t.operand(a)
                        } else {
                            t.operand(b)
                        };
                        t.set_reg(d, v);
                    }
                    pc += 1;
                }
                Instr::Mov { d, a } => {
                    if pass {
                        let v = t.operand(a);
                        t.set_reg(d, v);
                    }
                    pc += 1;
                }
                Instr::ReadSpecial { d, s } => {
                    if pass {
                        let v = t.special(s, 0, 0, 0, self.ntid);
                        t.set_reg(d, v);
                    }
                    pc += 1;
                }
                Instr::Ld {
                    space,
                    d,
                    addr,
                    offset,
                    width,
                } => {
                    if pass {
                        let base = t.reg(addr).wrapping_add(offset as u32);
                        for i in 0..width.regs() as u32 {
                            let a = base + 4 * i;
                            let trap = |fault| InterpError::Memory { pc, fault };
                            let v = match space {
                                Space::Global | Space::Const => {
                                    mem.try_read_u32(space, a).map_err(trap)?
                                }
                                Space::Local => mem.try_read_local(tid, a).map_err(trap)?,
                                Space::Shared | Space::Spawn => {
                                    self.shared_scratch
                                        [(a as usize / 4) % self.shared_scratch.len()]
                                }
                            };
                            t.set_reg(Reg(d.0 + i as u8), v);
                        }
                        res.loads += 1;
                        res.bytes_read += u64::from(width.bytes());
                    }
                    pc += 1;
                }
                Instr::St {
                    space,
                    a,
                    addr,
                    offset,
                    width,
                } => {
                    if pass {
                        let base = t.reg(addr).wrapping_add(offset as u32);
                        for i in 0..width.regs() as u32 {
                            let ad = base + 4 * i;
                            let v = t.reg(Reg(a.0 + i as u8));
                            let trap = |fault| InterpError::Memory { pc, fault };
                            match space {
                                Space::Global | Space::Const => {
                                    mem.try_write_u32(space, ad, v).map_err(trap)?
                                }
                                Space::Local => mem.try_write_local(tid, ad, v).map_err(trap)?,
                                Space::Shared | Space::Spawn => {
                                    let n = self.shared_scratch.len();
                                    self.shared_scratch[(ad as usize / 4) % n] = v;
                                }
                            }
                        }
                        res.stores += 1;
                        res.bytes_written += u64::from(width.bytes());
                    }
                    pc += 1;
                }
                Instr::Bra { target } => {
                    pc = if pass { target } else { pc + 1 };
                }
                Instr::Exit => {
                    if pass {
                        return Ok(res);
                    }
                    pc += 1;
                }
                Instr::Spawn { .. } => return Err(InterpError::SpawnUnsupported { pc }),
                Instr::Nop => pc += 1,
            }
        }
    }
}

/// Convenience wrapper: interprets a single thread of `program`.
///
/// # Errors
///
/// See [`ThreadInterp::run_thread`].
pub fn interpret_thread(
    program: &Program,
    tid: u32,
    entry_pc: usize,
    ntid: u32,
    mem: &mut MemoryFabric,
) -> Result<InterpResult, InterpError> {
    ThreadInterp::new(program, ntid).run_thread(tid, entry_pc, mem)
}

#[cfg(test)]
mod tests {
    use super::*;
    use simt_isa::assemble;
    use simt_mem::MemConfig;

    #[test]
    fn loop_trip_count_matches() {
        let p = assemble(
            r#"
            mov.u32 r1, %tid
            and.b32 r2, r1, 7
            add.s32 r2, r2, 1
            mov.u32 r3, 0
            loop:
            add.s32 r3, r3, 1
            sub.s32 r2, r2, 1
            setp.gt.s32 p0, r2, 0
            @p0 bra loop
            mul.lo.s32 r4, r1, 4
            st.global.u32 [r4+0], r3
            exit
            "#,
        )
        .unwrap();
        let mut mem = MemoryFabric::new(MemConfig::fx5800());
        mem.alloc_global(64, "out");
        for tid in 0..16 {
            let r = interpret_thread(&p, tid, 0, 16, &mut mem).unwrap();
            assert!(r.instructions > 0);
            assert_eq!(r.stores, 1);
            assert_eq!(mem.read_u32(Space::Global, tid * 4), tid % 8 + 1);
        }
    }

    #[test]
    fn instruction_counts_depend_on_data() {
        let p = assemble(
            r#"
            mov.u32 r1, %tid
            add.s32 r2, r1, 1
            loop:
            sub.s32 r2, r2, 1
            setp.gt.s32 p0, r2, 0
            @p0 bra loop
            exit
            "#,
        )
        .unwrap();
        let mut mem = MemoryFabric::new(MemConfig::fx5800());
        let short = interpret_thread(&p, 0, 0, 8, &mut mem).unwrap();
        let long = interpret_thread(&p, 7, 0, 8, &mut mem).unwrap();
        assert!(long.instructions > short.instructions);
    }

    #[test]
    fn spawn_is_rejected() {
        let p = assemble(
            r#"
            .kernel main
            .kernel child
            main:
                spawn $child, r1
                exit
            child:
                exit
            "#,
        )
        .unwrap();
        let mut mem = MemoryFabric::new(MemConfig::fx5800());
        let err = interpret_thread(&p, 0, 0, 1, &mut mem).unwrap_err();
        assert_eq!(err, InterpError::SpawnUnsupported { pc: 0 });
    }

    #[test]
    fn runaway_guard_fires() {
        let p = assemble("spin:\nbra spin").unwrap();
        let mut mem = MemoryFabric::new(MemConfig::fx5800());
        let mut interp = ThreadInterp::new(&p, 1);
        interp.budget = 1000;
        let err = interp.run_thread(0, 0, &mut mem).unwrap_err();
        assert_eq!(err, InterpError::Runaway { budget: 1000 });
    }

    #[test]
    fn byte_accounting() {
        let p = assemble(
            r#"
            mov.u32 r1, 0
            ld.global.v4 r4, [r1+0]
            st.global.u32 [r1+64], r4
            exit
            "#,
        )
        .unwrap();
        let mut mem = MemoryFabric::new(MemConfig::fx5800());
        mem.alloc_global(128, "buf");
        let r = interpret_thread(&p, 0, 0, 1, &mut mem).unwrap();
        assert_eq!(r.bytes_read, 16);
        assert_eq!(r.bytes_written, 4);
        assert_eq!(r.loads, 1);
        assert_eq!(r.stores, 1);
    }
}
