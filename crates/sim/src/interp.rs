//! Functional single-thread interpreter.
//!
//! Runs one thread's instruction stream to completion against the
//! functional memory image, with no timing. Used as a correctness oracle
//! for the cycle-level pipeline, to count per-thread dynamic instructions
//! for the MIMD-theoretical model (paper Fig. 10), and by the bandwidth
//! analytics behind Table IV.

use crate::thread::ThreadCtx;
use simt_isa::{eval_alu, eval_cmp, Instr, Program, Reg, Space};
use simt_mem::MemoryFabric;
use std::fmt;

/// Why interpretation failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum InterpError {
    /// The thread executed `spawn`, which has no meaning for a lone
    /// functional thread (the paper's MIMD/PDOM baselines run the
    /// traditional, spawn-free kernel).
    SpawnUnsupported {
        /// PC of the spawn instruction.
        pc: usize,
    },
    /// The instruction budget was exhausted (runaway loop guard).
    Runaway {
        /// The budget that was exceeded.
        budget: u64,
    },
    /// An illegal memory access (the functional analogue of a warp trap).
    Memory {
        /// PC of the faulting instruction.
        pc: usize,
        /// The underlying memory fault.
        fault: simt_mem::MemFault,
    },
}

impl fmt::Display for InterpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InterpError::SpawnUnsupported { pc } => {
                write!(
                    f,
                    "spawn at pc {pc} is not supported by the functional interpreter"
                )
            }
            InterpError::Runaway { budget } => {
                write!(f, "thread exceeded the {budget}-instruction budget")
            }
            InterpError::Memory { pc, fault } => {
                write!(f, "memory fault at pc {pc}: {fault}")
            }
        }
    }
}

impl std::error::Error for InterpError {}

/// Result of interpreting one thread.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct InterpResult {
    /// Dynamic instructions executed.
    pub instructions: u64,
    /// Load instructions executed.
    pub loads: u64,
    /// Store instructions executed.
    pub stores: u64,
    /// Bytes read (all spaces).
    pub bytes_read: u64,
    /// Bytes written (all spaces).
    pub bytes_written: u64,
}

/// A functional interpreter bound to a program and memory image.
#[derive(Debug)]
pub struct ThreadInterp<'a> {
    program: &'a Program,
    /// Per-thread scratch standing in for shared memory (functional only).
    shared_scratch: Vec<u32>,
    /// Instruction budget per thread.
    pub budget: u64,
    /// `%ntid` value reported to the thread.
    pub ntid: u32,
}

impl<'a> ThreadInterp<'a> {
    /// Creates an interpreter for `program`.
    pub fn new(program: &'a Program, ntid: u32) -> Self {
        ThreadInterp {
            program,
            shared_scratch: vec![0; 4096],
            budget: 50_000_000,
            ntid,
        }
    }

    /// Runs thread `tid` from `entry_pc` to `exit`.
    ///
    /// # Errors
    ///
    /// Returns [`InterpError::SpawnUnsupported`] on `spawn` and
    /// [`InterpError::Runaway`] if the budget is exceeded.
    pub fn run_thread(
        &mut self,
        tid: u32,
        entry_pc: usize,
        mem: &mut MemoryFabric,
    ) -> Result<InterpResult, InterpError> {
        let mut t = ThreadCtx::new(tid, self.program.resource_usage().registers.max(1));
        let mut pc = entry_pc;
        let mut res = InterpResult::default();
        loop {
            if res.instructions >= self.budget {
                return Err(InterpError::Runaway {
                    budget: self.budget,
                });
            }
            let instr = self.program.fetch(pc);
            res.instructions += 1;
            let pass = match instr.guard {
                None => true,
                Some(g) => t.pred(g.pred) != g.negate,
            };
            match instr.op {
                Instr::Alu { op, d, a, b, c } => {
                    if pass {
                        let v = eval_alu(op, t.operand(a), t.operand(b), t.operand(c));
                        t.set_reg(d, v);
                    }
                    pc += 1;
                }
                Instr::Setp { cmp, p, a, b } => {
                    if pass {
                        let v = eval_cmp(cmp, t.operand(a), t.operand(b));
                        t.set_pred(p, v);
                    }
                    pc += 1;
                }
                Instr::Selp { d, a, b, p } => {
                    if pass {
                        let v = if t.pred(p) {
                            t.operand(a)
                        } else {
                            t.operand(b)
                        };
                        t.set_reg(d, v);
                    }
                    pc += 1;
                }
                Instr::Mov { d, a } => {
                    if pass {
                        let v = t.operand(a);
                        t.set_reg(d, v);
                    }
                    pc += 1;
                }
                Instr::ReadSpecial { d, s } => {
                    if pass {
                        let v = t.special(s, 0, 0, 0, self.ntid);
                        t.set_reg(d, v);
                    }
                    pc += 1;
                }
                Instr::Ld {
                    space,
                    d,
                    addr,
                    offset,
                    width,
                } => {
                    if pass {
                        let base = t.reg(addr).wrapping_add(offset as u32);
                        for i in 0..width.regs() as u32 {
                            let a = base + 4 * i;
                            let trap = |fault| InterpError::Memory { pc, fault };
                            let v = match space {
                                Space::Global | Space::Const => {
                                    mem.try_read_u32(space, a).map_err(trap)?
                                }
                                Space::Local => mem.try_read_local(tid, a).map_err(trap)?,
                                Space::Shared | Space::Spawn => {
                                    self.shared_scratch
                                        [(a as usize / 4) % self.shared_scratch.len()]
                                }
                            };
                            t.set_reg(Reg(d.0 + i as u8), v);
                        }
                        res.loads += 1;
                        res.bytes_read += u64::from(width.bytes());
                    }
                    pc += 1;
                }
                Instr::St {
                    space,
                    a,
                    addr,
                    offset,
                    width,
                } => {
                    if pass {
                        let base = t.reg(addr).wrapping_add(offset as u32);
                        for i in 0..width.regs() as u32 {
                            let ad = base + 4 * i;
                            let v = t.reg(Reg(a.0 + i as u8));
                            let trap = |fault| InterpError::Memory { pc, fault };
                            match space {
                                Space::Global | Space::Const => {
                                    mem.try_write_u32(space, ad, v).map_err(trap)?
                                }
                                Space::Local => mem.try_write_local(tid, ad, v).map_err(trap)?,
                                Space::Shared | Space::Spawn => {
                                    let n = self.shared_scratch.len();
                                    self.shared_scratch[(ad as usize / 4) % n] = v;
                                }
                            }
                        }
                        res.stores += 1;
                        res.bytes_written += u64::from(width.bytes());
                    }
                    pc += 1;
                }
                Instr::Bra { target } => {
                    pc = if pass { target } else { pc + 1 };
                }
                Instr::Exit => {
                    if pass {
                        return Ok(res);
                    }
                    pc += 1;
                }
                Instr::Spawn { .. } => return Err(InterpError::SpawnUnsupported { pc }),
                Instr::Nop => pc += 1,
            }
        }
    }
}

/// A spawned child thread awaiting depth-first execution.
#[derive(Debug, Clone, Copy)]
struct PendingChild {
    entry_pc: usize,
    spawn_mem_addr: u32,
}

/// A full-ISA functional reference machine.
///
/// Unlike [`ThreadInterp`] (one isolated thread, private scratch, `spawn`
/// rejected), `RefMachine` models the *machine-level* state a program's
/// threads share — a flat shared-memory store, a flat spawn-memory store
/// with launch-time state records and bump-allocated formation slots, and
/// a work-list of spawned children executed depth-first after their
/// parent retires — while staying completely timing-free. It is the
/// independent oracle the lockstep differential harness (`sim::oracle`)
/// compares the cycle-level [`crate::Gpu`] against.
///
/// Reference spawn semantics, mirroring the hardware's dataflow:
///
/// * each launch thread `tid` owns the state record at
///   `tid * state_bytes` and sees that address in `%spawnmem`;
/// * a passing `spawn $k, rptr` allocates a fresh 4-byte formation slot
///   (bump allocator above the launch records, never recycled), writes
///   `rptr`'s value into it, marks the parent's lineage as continued, and
///   queues the child;
/// * the child sees the *slot* address in `%spawnmem` and loads the state
///   pointer from it, exactly like a hardware-formed dynamic warp;
/// * children run depth-first (LIFO) with machine-assigned thread ids
///   counting up from `ntid` — which is why comparable programs must pass
///   identity through the state record, not `%tid`.
///
/// The absolute spawn-memory *addresses* differ from the hardware's (per-SM
/// slot recycling vs. a flat bump allocator); programs that treat them as
/// opaque tokens — store, pass, load — behave identically on both.
#[derive(Debug)]
pub struct RefMachine<'a> {
    program: &'a Program,
    ntid: u32,
    regs_per_thread: u32,
    shared: Vec<u32>,
    spawn_mem: Vec<u32>,
    next_slot: u32,
    next_tid: u32,
    state_bytes: u32,
    /// Per-thread instruction budget (runaway guard).
    pub budget: u64,
    /// Launch threads executed.
    pub threads_launched: u64,
    /// Children created by passing `spawn` instructions.
    pub threads_spawned: u64,
    /// Threads (launch + dynamic) that retired.
    pub threads_retired: u64,
    /// Threads that retired without spawning (completed lineages).
    pub lineages_completed: u64,
    /// Total dynamic instructions across all threads.
    pub instructions: u64,
}

impl<'a> RefMachine<'a> {
    /// Creates a reference machine for `program` with `ntid` launch
    /// threads, `shared_bytes` of shared scratchpad and `state_bytes` per
    /// spawn-state record (the paper's 48).
    pub fn new(program: &'a Program, ntid: u32, shared_bytes: u32, state_bytes: u32) -> Self {
        RefMachine {
            program,
            ntid,
            regs_per_thread: program.resource_usage().registers.max(1),
            shared: vec![0; (shared_bytes as usize / 4).max(1)],
            spawn_mem: vec![0; 1 << 16],
            next_slot: ntid * state_bytes,
            next_tid: ntid,
            state_bytes,
            budget: 2_000_000,
            threads_launched: 0,
            threads_spawned: 0,
            threads_retired: 0,
            lineages_completed: 0,
            instructions: 0,
        }
    }

    /// Runs every launch thread (and, depth-first, every thread it
    /// transitively spawns) from `entry_pc` to completion.
    ///
    /// # Errors
    ///
    /// Returns [`InterpError::Runaway`] when a thread exceeds the budget
    /// or spawning fails to converge, and [`InterpError::Memory`] on an
    /// illegal access (the functional analogue of a warp trap).
    pub fn run(&mut self, mem: &mut MemoryFabric, entry_pc: usize) -> Result<(), InterpError> {
        for tid in 0..self.ntid {
            self.threads_launched += 1;
            let mut pending = Vec::new();
            self.exec_thread(mem, tid, entry_pc, tid * self.state_bytes, &mut pending)?;
            while let Some(c) = pending.pop() {
                if self.threads_spawned > 1_000_000 {
                    return Err(InterpError::Runaway {
                        budget: self.budget,
                    });
                }
                let ctid = self.next_tid;
                self.next_tid += 1;
                self.exec_thread(mem, ctid, c.entry_pc, c.spawn_mem_addr, &mut pending)?;
            }
        }
        Ok(())
    }

    fn onchip_index(
        store_len: usize,
        space: Space,
        addr: u32,
        pc: usize,
        wraps: bool,
    ) -> Result<usize, InterpError> {
        if !addr.is_multiple_of(4) {
            return Err(InterpError::Memory {
                pc,
                fault: simt_mem::MemFault::Misaligned { space, addr },
            });
        }
        let idx = addr as usize / 4;
        if wraps {
            // Shared scratchpads wrap modulo capacity, like the hardware's
            // `OnChipMemory` whose decoder ignores high bits.
            Ok(idx % store_len)
        } else if idx < store_len {
            Ok(idx)
        } else {
            Err(InterpError::Memory {
                pc,
                fault: simt_mem::MemFault::Unmapped { space },
            })
        }
    }

    /// Runs one thread to retirement, pushing spawned children onto
    /// `children`.
    fn exec_thread(
        &mut self,
        mem: &mut MemoryFabric,
        tid: u32,
        entry_pc: usize,
        spawn_mem_addr: u32,
        children: &mut Vec<PendingChild>,
    ) -> Result<(), InterpError> {
        let mut t = ThreadCtx::new(tid, self.regs_per_thread);
        t.spawn_mem_addr = spawn_mem_addr;
        let mut pc = entry_pc;
        let mut executed: u64 = 0;
        loop {
            if executed >= self.budget {
                return Err(InterpError::Runaway {
                    budget: self.budget,
                });
            }
            let instr = self.program.fetch(pc);
            executed += 1;
            self.instructions += 1;
            let pass = match instr.guard {
                None => true,
                Some(g) => t.pred(g.pred) != g.negate,
            };
            match instr.op {
                Instr::Alu { op, d, a, b, c } => {
                    if pass {
                        let v = eval_alu(op, t.operand(a), t.operand(b), t.operand(c));
                        t.set_reg(d, v);
                    }
                    pc += 1;
                }
                Instr::Setp { cmp, p, a, b } => {
                    if pass {
                        let v = eval_cmp(cmp, t.operand(a), t.operand(b));
                        t.set_pred(p, v);
                    }
                    pc += 1;
                }
                Instr::Selp { d, a, b, p } => {
                    if pass {
                        let v = if t.pred(p) {
                            t.operand(a)
                        } else {
                            t.operand(b)
                        };
                        t.set_reg(d, v);
                    }
                    pc += 1;
                }
                Instr::Mov { d, a } => {
                    if pass {
                        let v = t.operand(a);
                        t.set_reg(d, v);
                    }
                    pc += 1;
                }
                Instr::ReadSpecial { d, s } => {
                    if pass {
                        // Lane/warp/SM coordinates are a machine artefact;
                        // the reference reports 0 (comparable programs do
                        // not read them).
                        let v = t.special(s, 0, 0, 0, self.ntid);
                        t.set_reg(d, v);
                    }
                    pc += 1;
                }
                Instr::Ld {
                    space,
                    d,
                    addr,
                    offset,
                    width,
                } => {
                    if pass {
                        let base = t.reg(addr).wrapping_add(offset as u32);
                        for i in 0..width.regs() as u32 {
                            let a = base + 4 * i;
                            let trap = |fault| InterpError::Memory { pc, fault };
                            let v = match space {
                                Space::Global | Space::Const => {
                                    mem.try_read_u32(space, a).map_err(trap)?
                                }
                                Space::Local => mem.try_read_local(tid, a).map_err(trap)?,
                                Space::Shared => {
                                    let i =
                                        Self::onchip_index(self.shared.len(), space, a, pc, true)?;
                                    self.shared[i]
                                }
                                Space::Spawn => {
                                    let i = Self::onchip_index(
                                        self.spawn_mem.len(),
                                        space,
                                        a,
                                        pc,
                                        false,
                                    )?;
                                    self.spawn_mem[i]
                                }
                            };
                            t.set_reg(Reg(d.0 + i as u8), v);
                        }
                    }
                    pc += 1;
                }
                Instr::St {
                    space,
                    a,
                    addr,
                    offset,
                    width,
                } => {
                    if pass {
                        let base = t.reg(addr).wrapping_add(offset as u32);
                        for i in 0..width.regs() as u32 {
                            let ad = base + 4 * i;
                            let v = t.reg(Reg(a.0 + i as u8));
                            let trap = |fault| InterpError::Memory { pc, fault };
                            match space {
                                Space::Global | Space::Const => {
                                    mem.try_write_u32(space, ad, v).map_err(trap)?
                                }
                                Space::Local => mem.try_write_local(tid, ad, v).map_err(trap)?,
                                Space::Shared => {
                                    let i =
                                        Self::onchip_index(self.shared.len(), space, ad, pc, true)?;
                                    self.shared[i] = v;
                                }
                                Space::Spawn => {
                                    let i = Self::onchip_index(
                                        self.spawn_mem.len(),
                                        space,
                                        ad,
                                        pc,
                                        false,
                                    )?;
                                    self.spawn_mem[i] = v;
                                }
                            }
                        }
                    }
                    pc += 1;
                }
                Instr::Bra { target } => {
                    pc = if pass { target } else { pc + 1 };
                }
                Instr::Exit => {
                    if pass {
                        self.threads_retired += 1;
                        if !t.spawned_child {
                            self.lineages_completed += 1;
                        }
                        return Ok(());
                    }
                    pc += 1;
                }
                Instr::Spawn { target, ptr } => {
                    if pass {
                        let slot = self.next_slot;
                        self.next_slot += 4;
                        let i = Self::onchip_index(
                            self.spawn_mem.len(),
                            Space::Spawn,
                            slot,
                            pc,
                            false,
                        )?;
                        self.spawn_mem[i] = t.reg(ptr);
                        t.spawned_child = true;
                        self.threads_spawned += 1;
                        children.push(PendingChild {
                            entry_pc: target,
                            spawn_mem_addr: slot,
                        });
                    }
                    pc += 1;
                }
                Instr::Nop => pc += 1,
            }
        }
    }
}

/// Convenience wrapper: interprets a single thread of `program`.
///
/// # Errors
///
/// See [`ThreadInterp::run_thread`].
pub fn interpret_thread(
    program: &Program,
    tid: u32,
    entry_pc: usize,
    ntid: u32,
    mem: &mut MemoryFabric,
) -> Result<InterpResult, InterpError> {
    ThreadInterp::new(program, ntid).run_thread(tid, entry_pc, mem)
}

#[cfg(test)]
mod tests {
    use super::*;
    use simt_isa::assemble;
    use simt_mem::MemConfig;

    #[test]
    fn loop_trip_count_matches() {
        let p = assemble(
            r#"
            mov.u32 r1, %tid
            and.b32 r2, r1, 7
            add.s32 r2, r2, 1
            mov.u32 r3, 0
            loop:
            add.s32 r3, r3, 1
            sub.s32 r2, r2, 1
            setp.gt.s32 p0, r2, 0
            @p0 bra loop
            mul.lo.s32 r4, r1, 4
            st.global.u32 [r4+0], r3
            exit
            "#,
        )
        .unwrap();
        let mut mem = MemoryFabric::new(MemConfig::fx5800());
        mem.alloc_global(64, "out");
        for tid in 0..16 {
            let r = interpret_thread(&p, tid, 0, 16, &mut mem).unwrap();
            assert!(r.instructions > 0);
            assert_eq!(r.stores, 1);
            assert_eq!(mem.read_u32(Space::Global, tid * 4), tid % 8 + 1);
        }
    }

    #[test]
    fn instruction_counts_depend_on_data() {
        let p = assemble(
            r#"
            mov.u32 r1, %tid
            add.s32 r2, r1, 1
            loop:
            sub.s32 r2, r2, 1
            setp.gt.s32 p0, r2, 0
            @p0 bra loop
            exit
            "#,
        )
        .unwrap();
        let mut mem = MemoryFabric::new(MemConfig::fx5800());
        let short = interpret_thread(&p, 0, 0, 8, &mut mem).unwrap();
        let long = interpret_thread(&p, 7, 0, 8, &mut mem).unwrap();
        assert!(long.instructions > short.instructions);
    }

    #[test]
    fn spawn_is_rejected() {
        let p = assemble(
            r#"
            .kernel main
            .kernel child
            main:
                spawn $child, r1
                exit
            child:
                exit
            "#,
        )
        .unwrap();
        let mut mem = MemoryFabric::new(MemConfig::fx5800());
        let err = interpret_thread(&p, 0, 0, 1, &mut mem).unwrap_err();
        assert_eq!(err, InterpError::SpawnUnsupported { pc: 0 });
    }

    #[test]
    fn runaway_guard_fires() {
        let p = assemble("spin:\nbra spin").unwrap();
        let mut mem = MemoryFabric::new(MemConfig::fx5800());
        let mut interp = ThreadInterp::new(&p, 1);
        interp.budget = 1000;
        let err = interp.run_thread(0, 0, &mut mem).unwrap_err();
        assert_eq!(err, InterpError::Runaway { budget: 1000 });
    }

    #[test]
    fn byte_accounting() {
        let p = assemble(
            r#"
            mov.u32 r1, 0
            ld.global.v4 r4, [r1+0]
            st.global.u32 [r1+64], r4
            exit
            "#,
        )
        .unwrap();
        let mut mem = MemoryFabric::new(MemConfig::fx5800());
        mem.alloc_global(128, "buf");
        let r = interpret_thread(&p, 0, 0, 1, &mut mem).unwrap();
        assert_eq!(r.bytes_read, 16);
        assert_eq!(r.bytes_written, 4);
        assert_eq!(r.loads, 1);
        assert_eq!(r.stores, 1);
    }

    /// Parent writes a state record, spawns; child loads the record via
    /// `%spawnmem` indirection and stores the derived value to global.
    #[test]
    fn ref_machine_runs_spawn_chains() {
        let p = assemble(
            r#"
            .spawnstate 48
            .kernel main
            .kernel child
            main:
                mov.u32 r1, %tid
                mov.u32 r2, %spawnmem
                mul.lo.s32 r3, r1, 10
                st.spawn [r2+0], r1
                st.spawn [r2+4], r3
                spawn $child, r2
                exit
            child:
                mov.u32 r4, %spawnmem
                ld.spawn r5, [r4+0]
                ld.spawn r1, [r5+0]
                ld.spawn r3, [r5+4]
                add.s32 r3, r3, 1
                mul.lo.s32 r6, r1, 4
                st.global.u32 [r6+0], r3
                exit
            "#,
        )
        .unwrap();
        let mut mem = MemoryFabric::new(MemConfig::fx5800());
        mem.alloc_global(16, "out");
        let mut m = RefMachine::new(&p, 4, 1024, 48);
        m.run(&mut mem, 0).unwrap();
        for tid in 0..4 {
            assert_eq!(mem.read_u32(Space::Global, tid * 4), tid * 10 + 1);
        }
        assert_eq!(m.threads_launched, 4);
        assert_eq!(m.threads_spawned, 4);
        assert_eq!(m.threads_retired, 8);
        // Parents continued their lineage; only children complete it.
        assert_eq!(m.lineages_completed, 4);
    }

    #[test]
    fn ref_machine_spawn_is_depth_first() {
        // Each launch thread spawns a child that increments a global
        // counter; with depth-first draining the counter is exact, and a
        // guarded second-level spawn terminates the recursion.
        let p = assemble(
            r#"
            .spawnstate 48
            .kernel main
            .kernel down
            main:
                mov.u32 r2, %spawnmem
                mov.u32 r1, 2
                st.spawn [r2+0], r1
                spawn $down, r2
                exit
            down:
                mov.u32 r4, %spawnmem
                ld.spawn r5, [r4+0]
                ld.spawn r1, [r5+0]
                mov.u32 r7, 0
                ld.global.u32 r6, [r7+0]
                add.s32 r6, r6, 1
                st.global.u32 [r7+0], r6
                sub.s32 r1, r1, 1
                st.spawn [r5+0], r1
                setp.gt.s32 p0, r1, 0
                @p0 spawn $down, r5
                exit
            "#,
        )
        .unwrap();
        let mut mem = MemoryFabric::new(MemConfig::fx5800());
        mem.alloc_global(4, "ctr");
        let mut m = RefMachine::new(&p, 2, 1024, 48);
        m.run(&mut mem, 0).unwrap();
        // Two lineages, each running the child twice (r1 = 2 -> 1 -> 0).
        assert_eq!(mem.read_u32(Space::Global, 0), 4);
        assert_eq!(m.threads_spawned, 4);
        assert_eq!(m.threads_retired, 6);
        assert_eq!(m.lineages_completed, 2);
    }

    #[test]
    fn ref_machine_shared_is_machine_visible_and_wraps() {
        // Thread 0 stores to shared; thread 1 (run after it) reads the
        // value back through a wrapped alias of the same word.
        let p = assemble(
            r#"
            mov.u32 r1, %tid
            mov.u32 r3, 8
            mov.u32 r4, 77
            setp.eq.s32 p0, r1, 0
            @p0 st.shared.u32 [r3+0], r4
            setp.eq.s32 p1, r1, 1
            @!p1 exit
            ld.shared.u32 r2, [r3+1024]
            mov.u32 r5, 0
            st.global.u32 [r5+0], r2
            exit
            "#,
        )
        .unwrap();
        let mut mem = MemoryFabric::new(MemConfig::fx5800());
        mem.alloc_global(4, "out");
        // 1024-byte shared store: address 1032 wraps onto address 8.
        let mut m = RefMachine::new(&p, 2, 1024, 48);
        m.run(&mut mem, 0).unwrap();
        assert_eq!(mem.read_u32(Space::Global, 0), 77);
    }

    #[test]
    fn ref_machine_faults_on_misaligned_shared() {
        let p = assemble("mov.u32 r1, 2\nst.shared.u32 [r1+0], r1\nexit").unwrap();
        let mut mem = MemoryFabric::new(MemConfig::fx5800());
        let mut m = RefMachine::new(&p, 1, 1024, 48);
        let err = m.run(&mut mem, 0).unwrap_err();
        assert_eq!(
            err,
            InterpError::Memory {
                pc: 1,
                fault: simt_mem::MemFault::Misaligned {
                    space: Space::Shared,
                    addr: 2
                }
            }
        );
    }

    #[test]
    fn ref_machine_runaway_guard_fires() {
        let p = assemble("spin:\nbra spin").unwrap();
        let mut mem = MemoryFabric::new(MemConfig::fx5800());
        let mut m = RefMachine::new(&p, 1, 1024, 48);
        m.budget = 500;
        let err = m.run(&mut mem, 0).unwrap_err();
        assert_eq!(err, InterpError::Runaway { budget: 500 });
    }
}
