//! Differential fuzzer: random programs through the cycle-level `Gpu`
//! (parallel 1 and 4, spawn-bank conflicts on and off, both spawn
//! policies) versus the functional `RefMachine`, comparing final global
//! memory and thread-lifecycle counters.
//!
//! ```text
//! fuzz_diff [--iterations N] [--seed S] [--time-budget-secs T]
//!           [--out DIR] [--replay DIR]
//! ```
//!
//! Mismatches are shrunk and dumped as `.s` repro files under `--out`
//! (default `results/oracle/`). `--replay DIR` re-runs every saved repro
//! config in `DIR` instead of fuzzing — the CI regression mode.

use simt_isa::gen::GenConfig;
use simt_sim::oracle;
use std::path::PathBuf;
use std::process::ExitCode;
use std::time::{Duration, Instant};

struct Args {
    iterations: u64,
    seed: u64,
    time_budget: Option<Duration>,
    out: PathBuf,
    replay: Option<PathBuf>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        iterations: 1000,
        seed: 0,
        time_budget: None,
        out: PathBuf::from("results/oracle"),
        replay: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = || it.next().ok_or_else(|| format!("missing value for {flag}"));
        match flag.as_str() {
            "--iterations" => args.iterations = value()?.parse().map_err(|e| format!("{e}"))?,
            "--seed" => args.seed = value()?.parse().map_err(|e| format!("{e}"))?,
            "--time-budget-secs" => {
                args.time_budget = Some(Duration::from_secs(
                    value()?.parse().map_err(|e| format!("{e}"))?,
                ));
            }
            "--out" => args.out = PathBuf::from(value()?),
            "--replay" => args.replay = Some(PathBuf::from(value()?)),
            "--help" | "-h" => {
                println!(
                    "usage: fuzz_diff [--iterations N] [--seed S] \
                     [--time-budget-secs T] [--out DIR] [--replay DIR]"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag {other}")),
        }
    }
    Ok(args)
}

/// Runs one config; on mismatch, shrinks it, dumps a repro, and reports
/// `true` (failed).
fn run_and_report(cfg: &GenConfig, out: &std::path::Path) -> (oracle::CaseReport, bool) {
    let report = oracle::run_case(cfg);
    let Some(m) = &report.mismatch else {
        return (report, false);
    };
    eprintln!("MISMATCH seed={}: {m}", cfg.seed);
    let small = oracle::shrink(cfg);
    let small_report = oracle::run_case(&small);
    match oracle::dump_repro(out, &small_report) {
        Ok(path) => eprintln!("  minimized to `{}` -> {}", small.to_kv(), path.display()),
        Err(e) => eprintln!("  failed to write repro: {e}"),
    }
    (report, true)
}

fn replay(dir: &std::path::Path, out: &std::path::Path) -> Result<u64, String> {
    let mut entries: Vec<_> = std::fs::read_dir(dir)
        .map_err(|e| format!("cannot read {}: {e}", dir.display()))?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|x| x == "s"))
        .collect();
    entries.sort();
    let mut failures = 0;
    let mut replayed = 0;
    for path in entries {
        let Some(cfg) = oracle::parse_repro(&path) else {
            eprintln!("skipping {} (no gen-config header)", path.display());
            continue;
        };
        replayed += 1;
        let (_, failed) = run_and_report(&cfg, out);
        if failed {
            failures += 1;
        } else {
            println!("ok: {} ({})", path.display(), cfg.to_kv());
        }
    }
    println!("replayed {replayed} repro configs, {failures} failures");
    Ok(failures)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("fuzz_diff: {e}");
            return ExitCode::FAILURE;
        }
    };

    if let Some(dir) = &args.replay {
        return match replay(dir, &args.out) {
            Ok(0) => ExitCode::SUCCESS,
            Ok(_) => ExitCode::FAILURE,
            Err(e) => {
                eprintln!("fuzz_diff: {e}");
                ExitCode::FAILURE
            }
        };
    }

    let start = Instant::now();
    let mut failures: u64 = 0;
    let mut ran: u64 = 0;
    let mut with_spawns: u64 = 0;
    let mut with_loops: u64 = 0;
    let mut children: u64 = 0;
    for i in 0..args.iterations {
        if let Some(budget) = args.time_budget {
            if start.elapsed() >= budget {
                println!("time budget reached after {ran} iterations");
                break;
            }
        }
        let cfg = GenConfig::from_seed(args.seed.wrapping_add(i));
        let (report, failed) = run_and_report(&cfg, &args.out);
        ran += 1;
        if report.spawns {
            with_spawns += 1;
        }
        if report.loops {
            with_loops += 1;
        }
        children += report.ref_spawned;
        if failed {
            failures += 1;
        }
        if ran.is_multiple_of(100) {
            println!(
                "{ran} programs: {with_spawns} spawning ({children} children), \
                 {with_loops} looping, {failures} mismatches, {:.1}s",
                start.elapsed().as_secs_f64()
            );
        }
    }
    println!(
        "done: {ran} programs, {with_spawns} spawning ({children} children spawned), \
         {with_loops} looping, {failures} mismatches in {:.1}s",
        start.elapsed().as_secs_f64()
    );
    if failures == 0 {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
