//! The MIMD-theoretical performance model (paper Fig. 10).
//!
//! The paper's upper bound: the same chip, but every thread advances
//! independently (no lockstep, no divergence penalty) with an ideal memory
//! system. With abundant threads the chip then commits its peak
//! `num_sms × warp_size` thread-instructions per cycle; the run time is
//! bounded below by the longest single thread (critical path).

use crate::config::GpuConfig;
use crate::interp::{InterpError, ThreadInterp};
use simt_isa::Program;
use simt_mem::MemoryFabric;

/// MIMD-theoretical estimate for one kernel over `num_threads` threads.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MimdReport {
    /// Total dynamic thread-instructions across all threads.
    pub total_instructions: u64,
    /// Dynamic instructions of the longest thread (critical path).
    pub longest_thread: u64,
    /// Estimated cycles: `max(total / peak_ipc, longest_thread)`.
    pub cycles: u64,
    /// Implied chip IPC.
    pub ipc: f64,
    /// Threads (≙ rays for the traditional kernel).
    pub threads: u32,
}

impl MimdReport {
    /// Completed rays per second at `clock_ghz`.
    pub fn rays_per_second(&self, clock_ghz: f64) -> f64 {
        if self.cycles == 0 {
            return 0.0;
        }
        f64::from(self.threads) / (self.cycles as f64 / (clock_ghz * 1e9))
    }
}

/// Runs every thread functionally and derives the MIMD-theoretical bound.
///
/// The paper generates its MIMD numbers from the original (traditional)
/// kernel, which must therefore be spawn-free.
///
/// # Errors
///
/// Propagates [`InterpError`] from any thread (spawn use, runaway loop).
pub fn mimd_theoretical(
    program: &Program,
    entry_pc: usize,
    num_threads: u32,
    cfg: &GpuConfig,
    mem: &mut MemoryFabric,
) -> Result<MimdReport, InterpError> {
    let mut interp = ThreadInterp::new(program, num_threads);
    let mut total = 0u64;
    let mut longest = 0u64;
    for tid in 0..num_threads {
        let r = interp.run_thread(tid, entry_pc, mem)?;
        total += r.instructions;
        longest = longest.max(r.instructions);
    }
    let peak = cfg.peak_ipc();
    let cycles = (total.div_ceil(peak)).max(longest).max(1);
    Ok(MimdReport {
        total_instructions: total,
        longest_thread: longest,
        cycles,
        ipc: total as f64 / cycles as f64,
        threads: num_threads,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use simt_isa::assemble;
    use simt_mem::MemConfig;

    #[test]
    fn uniform_threads_hit_peak_ipc() {
        let p = assemble(
            r#"
            mov.u32 r1, %tid
            add.s32 r1, r1, 1
            add.s32 r1, r1, 1
            add.s32 r1, r1, 1
            exit
            "#,
        )
        .unwrap();
        let cfg = GpuConfig::tiny(); // peak = 2 SMs * 4 = 8
        let mut mem = MemoryFabric::new(MemConfig::fx5800());
        let r = mimd_theoretical(&p, 0, 800, &cfg, &mut mem).unwrap();
        assert_eq!(r.total_instructions, 800 * 5);
        assert_eq!(r.longest_thread, 5);
        assert_eq!(r.cycles, 500);
        assert!((r.ipc - 8.0).abs() < 1e-9, "ipc {}", r.ipc);
    }

    #[test]
    fn critical_path_bounds_small_launches() {
        let p = assemble(
            r#"
            mov.u32 r1, %tid
            add.s32 r2, r1, 1
            loop:
            sub.s32 r2, r2, 1
            setp.gt.s32 p0, r2, 0
            @p0 bra loop
            exit
            "#,
        )
        .unwrap();
        let cfg = GpuConfig::tiny();
        let mut mem = MemoryFabric::new(MemConfig::fx5800());
        let r = mimd_theoretical(&p, 0, 2, &cfg, &mut mem).unwrap();
        // Thread 1 loops twice: 2 + 3*2 + 1 = 9 instructions.
        assert_eq!(r.longest_thread, 9);
        assert_eq!(r.cycles, 9, "critical path dominates a 2-thread launch");
    }

    #[test]
    fn rays_per_second_scales_with_clock() {
        let p = assemble("nop\nexit").unwrap();
        let cfg = GpuConfig::tiny();
        let mut mem = MemoryFabric::new(MemConfig::fx5800());
        let r = mimd_theoretical(&p, 0, 8, &cfg, &mut mem).unwrap();
        assert!(r.rays_per_second(2.0) > r.rays_per_second(1.0));
    }
}
