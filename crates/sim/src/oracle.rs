//! Lockstep differential oracle: cycle-level [`Gpu`] vs. [`RefMachine`].
//!
//! Each generated program (see `simt_isa::gen`) is executed on the
//! functional reference machine once and on the cycle-level simulator
//! under a matrix of timing variants — parallel execution levels 1 and 4,
//! spawn-bank-conflict modelling on and off, and both spawn policies.
//! Timing knobs must never change functional results, so every variant is
//! compared against the *same* reference run:
//!
//! * the final global-memory image (output region + per-slot scratch);
//! * under [`SpawnPolicy::Always`], the four lifecycle counters
//!   (`threads_launched`, `threads_spawned`, `threads_retired`,
//!   `lineages_completed`), which together pin the retired-thread set for
//!   comparable programs (thread identity flows through lineage ids, not
//!   machine-assigned tids);
//! * under [`SpawnPolicy::OnDivergence`], global memory only — spawn
//!   elision legitimately converts spawned children into continued
//!   parents, changing the counters but never the data.
//!
//! A failing case is shrunk greedily over the generator's config knobs
//! and dumped as a self-contained `.s` repro (source plus a
//! `; gen-config:` header that [`parse_repro`] reads back).

use crate::config::{GpuConfig, SpawnPolicy};
use crate::gpu::{Gpu, Launch, RunOutcome};
use crate::interp::RefMachine;
use dmk_core::DmkConfig;
use simt_isa::gen::{generate, GenConfig, GenProgram, CONST_WORDS, STATE_BYTES};
use simt_mem::{MemConfig, MemoryFabric};
use std::fmt;
use std::io::Write as _;
use std::path::{Path, PathBuf};

/// Cycle budget per simulated variant. Generated programs are tiny; a
/// healthy run finishes in thousands of cycles.
const MAX_CYCLES: u64 = 5_000_000;

/// Shared-memory capacity visible to the reference machine, matching the
/// per-SM scratchpad the generator's addresses wrap inside.
const REF_SHARED_BYTES: u32 = 16 * 1024;

/// One timing variant of the cycle-level machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Variant {
    /// Host threads driving the SMs (`--parallel`).
    pub parallel: usize,
    /// Model spawn-memory bank conflicts.
    pub bank_conflicts: bool,
    /// Spawn policy under test.
    pub policy: SpawnPolicy,
}

impl fmt::Display for Variant {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "parallel={} banks={} policy={:?}",
            self.parallel,
            if self.bank_conflicts { "on" } else { "off" },
            self.policy
        )
    }
}

/// The variant matrix every case runs through.
pub const VARIANTS: [Variant; 6] = [
    Variant {
        parallel: 1,
        bank_conflicts: false,
        policy: SpawnPolicy::Always,
    },
    Variant {
        parallel: 4,
        bank_conflicts: false,
        policy: SpawnPolicy::Always,
    },
    Variant {
        parallel: 1,
        bank_conflicts: true,
        policy: SpawnPolicy::Always,
    },
    Variant {
        parallel: 4,
        bank_conflicts: true,
        policy: SpawnPolicy::Always,
    },
    Variant {
        parallel: 1,
        bank_conflicts: false,
        policy: SpawnPolicy::OnDivergence,
    },
    Variant {
        parallel: 4,
        bank_conflicts: false,
        policy: SpawnPolicy::OnDivergence,
    },
];

/// How a differential case failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Mismatch {
    /// The reference machine itself faulted (generator invariant broken).
    ReferenceError {
        /// Rendered interpreter error.
        detail: String,
    },
    /// A simulator variant failed to launch or run.
    GpuError {
        /// The failing variant.
        variant: Variant,
        /// Rendered launch/run error.
        detail: String,
    },
    /// A variant stopped for a reason other than completion.
    NotCompleted {
        /// The failing variant.
        variant: Variant,
        /// Rendered [`RunOutcome`].
        outcome: String,
    },
    /// Final global memory differs at `word` (byte address `word * 4`).
    Global {
        /// The failing variant.
        variant: Variant,
        /// Word index into the compared global region.
        word: usize,
        /// Simulator value.
        gpu: u32,
        /// Reference value.
        reference: u32,
    },
    /// A lifecycle counter differs.
    Counter {
        /// The failing variant.
        variant: Variant,
        /// Which counter.
        counter: &'static str,
        /// Simulator value.
        gpu: u64,
        /// Reference value.
        reference: u64,
    },
}

impl fmt::Display for Mismatch {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Mismatch::ReferenceError { detail } => write!(f, "reference machine: {detail}"),
            Mismatch::GpuError { variant, detail } => write!(f, "[{variant}] gpu: {detail}"),
            Mismatch::NotCompleted { variant, outcome } => {
                write!(f, "[{variant}] did not complete: {outcome}")
            }
            Mismatch::Global {
                variant,
                word,
                gpu,
                reference,
            } => write!(
                f,
                "[{variant}] global word {word} (addr {:#x}): gpu {gpu:#010x} != ref {reference:#010x}",
                word * 4
            ),
            Mismatch::Counter {
                variant,
                counter,
                gpu,
                reference,
            } => write!(f, "[{variant}] {counter}: gpu {gpu} != ref {reference}"),
        }
    }
}

/// Outcome of one differential case.
#[derive(Debug, Clone)]
pub struct CaseReport {
    /// The configuration that was run.
    pub cfg: GenConfig,
    /// The first mismatch found, if any.
    pub mismatch: Option<Mismatch>,
    /// Whether the program exercised `spawn`.
    pub spawns: bool,
    /// Whether the program contained loops.
    pub loops: bool,
    /// Children the reference machine spawned (coverage signal).
    pub ref_spawned: u64,
}

impl CaseReport {
    /// True when every variant matched the reference.
    pub fn passed(&self) -> bool {
        self.mismatch.is_none()
    }
}

/// Reference-run result: final global image plus lifecycle counters.
struct RefRun {
    global: Vec<u32>,
    launched: u64,
    spawned: u64,
    retired: u64,
    lineages: u64,
}

fn run_reference(gp: &GenProgram) -> Result<RefRun, String> {
    let mut mem = MemoryFabric::new(MemConfig::fx5800());
    mem.alloc_global(gp.cfg.global_bytes(), "oracle");
    setup_const(&mut mem, &gp.cfg);
    mem.configure_local(gp.program.resource_usage().local_bytes);
    let entry = entry_pc(gp, "main")?;
    let mut m = RefMachine::new(&gp.program, gp.cfg.ntid, REF_SHARED_BYTES, STATE_BYTES);
    m.run(&mut mem, entry).map_err(|e| e.to_string())?;
    Ok(RefRun {
        global: mem.host_read_global(0, gp.cfg.global_bytes() as usize / 4),
        launched: m.threads_launched,
        spawned: m.threads_spawned,
        retired: m.threads_retired,
        lineages: m.lineages_completed,
    })
}

fn setup_const(mem: &mut MemoryFabric, cfg: &GenConfig) {
    if cfg.use_const {
        let base = mem.alloc_const(CONST_WORDS * 4, "oracle-const");
        for (i, w) in cfg.const_image().iter().enumerate() {
            mem.host_write_const(base + 4 * i as u32, *w);
        }
    }
}

fn entry_pc(gp: &GenProgram, name: &str) -> Result<usize, String> {
    gp.program
        .entry_points()
        .iter()
        .find(|e| e.name == name)
        .map(|e| e.pc)
        .ok_or_else(|| format!("no `{name}` entry point"))
}

fn gpu_config(cfg: &GenConfig, v: Variant) -> GpuConfig {
    let mut mem = MemConfig::fx5800();
    mem.spawn_bank_conflicts = v.bank_conflicts;
    GpuConfig {
        mem,
        spawn_policy: v.policy,
        dmk: if cfg.spawn_levels > 0 {
            Some(DmkConfig {
                warp_size: 4,
                threads_per_sm: 32,
                state_bytes: STATE_BYTES,
                num_ukernels: 4,
                fifo_capacity: 64,
            })
        } else {
            None
        },
        ..GpuConfig::tiny()
    }
}

fn run_variant(gp: &GenProgram, v: Variant, reference: &RefRun) -> Option<Mismatch> {
    let mut gpu = Gpu::builder(gpu_config(&gp.cfg, v))
        .parallelism(v.parallel)
        .build();
    gpu.mem_mut().alloc_global(gp.cfg.global_bytes(), "oracle");
    setup_const(gpu.mem_mut(), &gp.cfg);
    if let Err(e) = gpu.launch(Launch {
        program: gp.program.clone(),
        entry: "main".to_string(),
        num_threads: gp.cfg.ntid,
        threads_per_block: 8,
    }) {
        return Some(Mismatch::GpuError {
            variant: v,
            detail: e.to_string(),
        });
    }
    let summary = match gpu.run(MAX_CYCLES) {
        Ok(s) => s,
        Err(e) => {
            return Some(Mismatch::GpuError {
                variant: v,
                detail: e.to_string(),
            })
        }
    };
    if summary.outcome != RunOutcome::Completed {
        return Some(Mismatch::NotCompleted {
            variant: v,
            outcome: format!("{:?}", summary.outcome),
        });
    }
    let global = gpu
        .mem()
        .host_read_global(0, gp.cfg.global_bytes() as usize / 4);
    for (word, (&g, &r)) in global.iter().zip(reference.global.iter()).enumerate() {
        if g != r {
            return Some(Mismatch::Global {
                variant: v,
                word,
                gpu: g,
                reference: r,
            });
        }
    }
    if v.policy == SpawnPolicy::Always {
        let s = gpu.stats();
        let pairs: [(&'static str, u64, u64); 4] = [
            ("threads_launched", s.threads_launched, reference.launched),
            ("threads_spawned", s.threads_spawned, reference.spawned),
            ("threads_retired", s.threads_retired, reference.retired),
            (
                "lineages_completed",
                s.lineages_completed,
                reference.lineages,
            ),
        ];
        for (counter, g, r) in pairs {
            if g != r {
                return Some(Mismatch::Counter {
                    variant: v,
                    counter,
                    gpu: g,
                    reference: r,
                });
            }
        }
    }
    None
}

/// Runs one differential case: the reference once, then every variant in
/// [`VARIANTS`], stopping at the first mismatch.
pub fn run_case(cfg: &GenConfig) -> CaseReport {
    let gp = generate(cfg);
    let spawns = cfg.spawn_levels > 0;
    let loops = cfg.max_loop_depth > 0;
    let reference = match run_reference(&gp) {
        Ok(r) => r,
        Err(detail) => {
            return CaseReport {
                cfg: cfg.clone(),
                mismatch: Some(Mismatch::ReferenceError { detail }),
                spawns,
                loops,
                ref_spawned: 0,
            }
        }
    };
    let mismatch = VARIANTS
        .iter()
        .find_map(|&v| run_variant(&gp, v, &reference));
    CaseReport {
        cfg: cfg.clone(),
        mismatch,
        spawns,
        loops,
        ref_spawned: reference.spawned,
    }
}

/// Greedily shrinks a failing configuration: repeatedly tries to reduce
/// one knob at a time, keeping any reduction that still fails, until no
/// single reduction reproduces the mismatch.
pub fn shrink(cfg: &GenConfig) -> GenConfig {
    let mut best = cfg.clone();
    for _ in 0..64 {
        let mut candidates = Vec::new();
        if best.spawn_levels > 0 {
            let mut c = best.clone();
            c.spawn_levels -= 1;
            candidates.push(c);
        }
        if best.max_loop_depth > 0 {
            let mut c = best.clone();
            c.max_loop_depth -= 1;
            candidates.push(c);
        }
        if best.blocks > 1 {
            let mut c = best.clone();
            c.blocks -= 1;
            candidates.push(c);
        }
        if best.ops_per_block > 1 {
            let mut c = best.clone();
            c.ops_per_block -= 1;
            candidates.push(c);
        }
        if best.ntid > 1 {
            let mut c = best.clone();
            c.ntid /= 2;
            candidates.push(c);
        }
        for flag in 0..6 {
            let mut c = best.clone();
            let on = match flag {
                0 => std::mem::replace(&mut c.spawn_guarded, false),
                1 => std::mem::replace(&mut c.use_shared, false),
                2 => std::mem::replace(&mut c.use_local, false),
                3 => std::mem::replace(&mut c.use_const, false),
                4 => std::mem::replace(&mut c.use_v4, false),
                _ => std::mem::replace(&mut c.use_float, false),
            };
            if on {
                candidates.push(c);
            }
        }
        let Some(smaller) = candidates.into_iter().find(|c| !run_case(c).passed()) else {
            break;
        };
        best = smaller;
    }
    best
}

/// Writes a minimized repro for `report` into `dir` as
/// `repro-seed<seed>.s`: the mismatch, the `; gen-config:` line
/// [`parse_repro`] reads back, and the full assembly source.
///
/// # Errors
///
/// Propagates filesystem errors creating `dir` or writing the file.
pub fn dump_repro(dir: &Path, report: &CaseReport) -> std::io::Result<PathBuf> {
    std::fs::create_dir_all(dir)?;
    let path = dir.join(format!("repro-seed{}.s", report.cfg.seed));
    let gp = generate(&report.cfg);
    let mut f = std::fs::File::create(&path)?;
    writeln!(f, "; fuzz_diff minimized repro")?;
    match &report.mismatch {
        Some(m) => writeln!(f, "; mismatch: {m}")?,
        None => writeln!(f, "; mismatch: (none — archived case)")?,
    }
    writeln!(f, "; gen-config: {}", report.cfg.to_kv())?;
    f.write_all(gp.source.as_bytes())?;
    Ok(path)
}

/// Reads the `; gen-config:` header out of a repro file written by
/// [`dump_repro`]; returns `None` when the file has no parseable header.
pub fn parse_repro(path: &Path) -> Option<GenConfig> {
    let text = std::fs::read_to_string(path).ok()?;
    text.lines()
        .find_map(|l| l.strip_prefix("; gen-config: "))
        .and_then(GenConfig::from_kv)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spawn_free_case_matches() {
        let cfg = GenConfig {
            spawn_levels: 0,
            ..GenConfig::from_seed(1)
        };
        let report = run_case(&cfg);
        assert!(report.passed(), "{:?}", report.mismatch);
    }

    #[test]
    fn spawning_case_matches() {
        let cfg = GenConfig {
            spawn_levels: 2,
            ..GenConfig::from_seed(2)
        };
        let report = run_case(&cfg);
        assert!(report.passed(), "{:?}", report.mismatch);
        assert!(report.ref_spawned > 0, "expected spawns to occur");
    }

    #[test]
    fn repro_files_round_trip_configs() {
        let dir = std::env::temp_dir().join("oracle-repro-test");
        let report = run_case(&GenConfig::from_seed(3));
        let path = dump_repro(&dir, &report).expect("dump");
        let back = parse_repro(&path).expect("parse");
        assert_eq!(back, report.cfg);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
