//! The whole chip: SM array, launch dispatcher, and the two-phase cycle
//! loop.
//!
//! Each simulated cycle runs in two phases:
//!
//! * **Phase A** — every SM steps against only its own private state
//!   (warps, on-chip memories, read-only cache, coalescer) plus an
//!   immutable [`FabricView`] of device-memory metadata, *emitting*
//!   deferred functional ops and coalesced module requests into its
//!   private pending queue. No SM can observe another SM in this phase,
//!   so it is embarrassingly parallel: with [`GpuBuilder::parallelism`]
//!   the SM array is sharded across a pool of OS threads.
//! * **Phase B** — the shared [`MemoryFabric`](simt_mem::MemoryFabric)
//!   drains every SM's queue serially in SM-id order, applying the
//!   functional ops and arbitrating the DRAM modules deterministically.
//!
//! Because phase A touches no shared mutable state and phase B always
//! runs in fixed SM-id order, the simulation is bit-identical at every
//! parallelism level — the worker threads change wall-clock time only.
//!
//! The loop is **event-driven**: after a cycle in which nothing happened
//! (no dispatch, no issue, no fault), the machine state is a pure
//! function of time until the earliest warp wake-up, so `now` jumps
//! straight to `min(next wake, cycle limit, watchdog deadline)` with the
//! skipped idle cycles recorded in bulk — byte-identical to ticking
//! through them (see DESIGN.md §13). [`GpuBuilder::force_tick`] disables
//! the skip for differential testing.

use crate::checkpoint::{self, RestoreError, Snapshot};
use crate::config::{GpuConfig, SchedulingModel};
use crate::fault::{
    DeadlockDiagnostics, Fault, FaultPolicy, InjectedFault, Injector, LaunchError, SimError,
};
use crate::sm::{ExecCtx, Sm};
use crate::stats::{DivergenceTimeline, SimStats};
use crate::telemetry::{TelemetryReport, TelemetrySpec};
use dmk_core::DmkStats;
use simt_isa::codec::{CodecError, Decoder, Encoder};
use simt_isa::{EncodeError, Program, ReconvergenceTable};
use simt_mem::{FabricView, MemoryFabric, TrafficStats};
use std::collections::VecDeque;
use std::sync::mpsc;
use std::thread;

/// A kernel launch request.
#[derive(Debug, Clone)]
pub struct Launch {
    /// The program to run (contains the launch kernel and any μ-kernels).
    pub program: Program,
    /// Name of the launch entry point (a `.kernel`).
    pub entry: String,
    /// Number of launch-time threads.
    pub num_threads: u32,
    /// Threads per block (must be a multiple of the warp size).
    pub threads_per_block: u32,
}

/// Why a run stopped.
///
/// Marked `#[non_exhaustive]`: future hardware models may stop for new
/// reasons, so downstream matches need a wildcard arm.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum RunOutcome {
    /// Every thread retired and no spawned work remains.
    Completed,
    /// The cycle budget was exhausted first (the paper simulates only the
    /// first 300k cycles).
    CycleLimit,
    /// The watchdog fired: work remained but nothing made forward progress
    /// for [`GpuConfig::watchdog_cycles`] consecutive cycles.
    Deadlock {
        /// Per-SM warp states at the moment the watchdog fired.
        diagnostics: DeadlockDiagnostics,
    },
}

/// Result of a run.
#[derive(Debug, Clone)]
pub struct RunSummary {
    /// Why the run stopped.
    pub outcome: RunOutcome,
    /// Aggregate simulation statistics.
    pub stats: SimStats,
    /// Memory traffic by address space.
    pub traffic: TrafficStats,
    /// Aggregated dynamic μ-kernel statistics (zeroed when disabled).
    pub dmk: DmkStats,
    /// Every warp trap recorded so far (cumulative across sequential
    /// launches; empty on a fault-free run).
    pub faults: Vec<Fault>,
}

#[derive(Debug)]
struct PendingBlock {
    id: usize,
    next_tid: u32,
    end_tid: u32,
}

#[derive(Debug)]
struct ActiveLaunch {
    program: Program,
    rtab: ReconvergenceTable,
    entry_pc: usize,
    regs_per_thread: u32,
    ntid: u32,
    blocks: VecDeque<PendingBlock>,
    /// Next id handed to a dynamically created thread.
    next_dynamic_tid: u32,
}

/// The simulated GPU.
#[derive(Debug)]
pub struct Gpu {
    cfg: GpuConfig,
    mem: MemoryFabric,
    sms: Vec<Sm>,
    launch: Option<ActiveLaunch>,
    stats: SimStats,
    now: u64,
    rr_sm: usize,
    injector: Option<Injector>,
    faults: Vec<Fault>,
    /// Worker threads used for phase A (1 = step SMs inline).
    parallel: usize,
    /// Debug knob: tick every cycle even when the loop could skip ahead.
    force_tick: bool,
    /// Idle cycles the event-driven loop skipped over (diagnostic; not
    /// part of [`SimStats`], not serialized).
    skipped_cycles: u64,
    /// Number of skip jumps taken (diagnostic).
    skip_events: u64,
    /// Reusable request buffer for the hierarchy's batched phase B
    /// (always empty between cycles; not serialized).
    batch_buf: Vec<simt_mem::BatchRequest>,
}

/// A pool of phase-A worker threads, alive for the duration of one
/// [`Gpu::run`]. Each worker owns a job channel; SM chunks are shuttled
/// to it by value every cycle and handed back with any faults the chunk
/// raised. Workers exit when the pool (and thus every job sender) drops,
/// and the enclosing [`thread::scope`] joins them.
/// One worker's phase-A report: its SM chunk handed back, the faults the
/// chunk raised, and how many of its SMs issued an instruction.
type WorkerReport = (Vec<Sm>, Vec<Fault>, u64);

struct WorkerPool {
    jobs: Vec<mpsc::Sender<(u64, Vec<Sm>)>>,
    results: mpsc::Receiver<(usize, Vec<Sm>, Vec<Fault>, u64)>,
}

impl WorkerPool {
    /// Spawns `nworkers` scoped threads stepping SM chunks against the
    /// shared read-only execution context.
    fn spawn<'scope, 'env>(
        scope: &'scope thread::Scope<'scope, 'env>,
        nworkers: usize,
        ctx: &'env ExecCtx<'env>,
        view: &'env FabricView,
        injector: Option<&'env Injector>,
    ) -> Self {
        let (res_tx, results) = mpsc::channel();
        let mut jobs = Vec::with_capacity(nworkers);
        for w in 0..nworkers {
            let (tx, rx) = mpsc::channel::<(u64, Vec<Sm>)>();
            let res_tx = res_tx.clone();
            scope.spawn(move || {
                while let Ok((now, mut chunk)) = rx.recv() {
                    let mut faults = Vec::new();
                    let mut issued = 0u64;
                    for sm in &mut chunk {
                        match sm.step(now, ctx, view, injector) {
                            Ok(true) => issued += 1,
                            Ok(false) => {}
                            Err(f) => faults.push(f),
                        }
                    }
                    if res_tx.send((w, chunk, faults, issued)).is_err() {
                        break;
                    }
                }
            });
            jobs.push(tx);
        }
        WorkerPool { jobs, results }
    }

    /// Steps every SM once for cycle `now` across the pool. SMs are split
    /// into contiguous chunks (so chunk→worker assignment is a pure
    /// function of the SM count) and reassembled in SM-id order, as are
    /// the faults — results are byte-identical to the inline loop.
    #[allow(clippy::expect_used)]
    fn step_all(&self, now: u64, sms: &mut Vec<Sm>) -> (Vec<Fault>, u64) {
        let nw = self.jobs.len();
        let per = sms.len().div_ceil(nw);
        let mut rest = std::mem::take(sms);
        for job in &self.jobs {
            let take = per.min(rest.len());
            let tail = rest.split_off(take);
            let chunk = std::mem::replace(&mut rest, tail);
            job.send((now, chunk)).expect("phase-A worker alive");
        }
        let mut slots: Vec<Option<WorkerReport>> = (0..nw).map(|_| None).collect();
        for _ in 0..nw {
            let (w, chunk, faults, issued) = self.results.recv().expect("phase-A worker alive");
            slots[w] = Some((chunk, faults, issued));
        }
        let mut faults = Vec::new();
        let mut issued = 0u64;
        for slot in slots {
            let (chunk, f, i) = slot.expect("every worker reports exactly once");
            sms.extend(chunk);
            faults.extend(f);
            issued += i;
        }
        (faults, issued)
    }
}

/// Fluent constructor for [`Gpu`]: configuration, phase-A parallelism,
/// fault policy, fault injection, and telemetry in one facade, so every
/// caller — experiments, benches, examples, tests — builds the machine
/// the same way.
///
/// ```
/// use simt_sim::{Gpu, GpuConfig, TelemetrySpec};
///
/// let gpu = Gpu::builder(GpuConfig::tiny())
///     .parallelism(4)
///     .telemetry(TelemetrySpec::metrics())
///     .build();
/// assert_eq!(gpu.parallelism(), 4);
/// // Recording requires the (default-on) `telemetry` feature.
/// assert_eq!(gpu.telemetry_enabled(), cfg!(feature = "telemetry"));
/// ```
#[derive(Debug)]
pub struct GpuBuilder {
    cfg: GpuConfig,
    parallelism: usize,
    injector: Option<Injector>,
    telemetry: TelemetrySpec,
    force_tick: bool,
}

impl GpuBuilder {
    /// Number of phase-A worker threads (clamped to ≥ 1; 1 = step SMs
    /// inline). Simulation results are bit-identical at every setting —
    /// this changes wall-clock time only.
    pub fn parallelism(mut self, n: usize) -> Self {
        self.parallelism = n.max(1);
        self
    }

    /// What a warp trap does: abort the run or kill the warp and keep
    /// going. Overrides [`GpuConfig::fault_policy`].
    pub fn fault_policy(mut self, policy: FaultPolicy) -> Self {
        self.cfg.fault_policy = policy;
        self
    }

    /// Installs a deterministic fault injector (testing hook).
    pub fn injector(mut self, injector: Injector) -> Self {
        self.injector = Some(injector);
        self
    }

    /// Telemetry configuration (off by default; see
    /// [`TelemetrySpec`]).
    pub fn telemetry(mut self, spec: TelemetrySpec) -> Self {
        self.telemetry = spec;
        self
    }

    /// Debug knob: force the cycle loop to tick every cycle instead of
    /// skipping ahead over fully idle spans. Results are byte-identical
    /// either way (that equivalence is what the differential tests
    /// assert); forcing ticks only costs wall-clock time.
    pub fn force_tick(mut self, on: bool) -> Self {
        self.force_tick = on;
        self
    }

    /// Builds the machine.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is inconsistent (see
    /// [`GpuConfig::validate`]).
    pub fn build(self) -> Gpu {
        let mut gpu = Gpu::from_config(self.cfg);
        gpu.parallel = self.parallelism;
        gpu.injector = self.injector;
        gpu.force_tick = self.force_tick;
        if self.telemetry.metrics {
            gpu.set_telemetry(&self.telemetry);
        }
        gpu
    }
}

impl Gpu {
    /// Starts building a GPU for `cfg` — the one construction path. See
    /// [`GpuBuilder`].
    pub fn builder(cfg: GpuConfig) -> GpuBuilder {
        GpuBuilder {
            cfg,
            parallelism: 1,
            injector: None,
            telemetry: TelemetrySpec::off(),
            force_tick: false,
        }
    }

    fn from_config(cfg: GpuConfig) -> Self {
        cfg.validate();
        let sms = (0..cfg.num_sms).map(|i| Sm::new(i, &cfg)).collect();
        let stats = SimStats::new(cfg.divergence_window, cfg.warp_size);
        let mem = MemoryFabric::new(cfg.mem.clone());
        Gpu {
            cfg,
            mem,
            sms,
            launch: None,
            stats,
            now: 0,
            rr_sm: 0,
            injector: None,
            faults: Vec::new(),
            parallel: 1,
            force_tick: false,
            skipped_cycles: 0,
            skip_events: 0,
            batch_buf: Vec::new(),
        }
    }

    /// Installs a deterministic fault injector (testing hook). Replaces
    /// any previously installed injector.
    pub fn set_injector(&mut self, injector: Injector) {
        self.injector = Some(injector);
    }

    /// Consuming form of the parallelism knob, for machines that were not
    /// built through [`GpuBuilder`] — typically one rebuilt by
    /// [`Gpu::restore`], which always starts serial.
    #[must_use]
    pub fn with_parallelism(mut self, n: usize) -> Self {
        self.parallel = n.max(1);
        self
    }

    /// The configured phase-A parallelism.
    pub fn parallelism(&self) -> usize {
        self.parallel
    }

    /// Reconfigures telemetry, replacing every SM's shard with a fresh
    /// one (recordings so far are discarded). Prefer setting telemetry
    /// once, through [`GpuBuilder::telemetry`].
    pub fn set_telemetry(&mut self, spec: &TelemetrySpec) {
        for sm in &mut self.sms {
            sm.set_telemetry(spec, self.cfg.divergence_window, self.cfg.warp_size);
        }
    }

    /// Whether telemetry is recording (compiled in *and* enabled at
    /// runtime).
    pub fn telemetry_enabled(&self) -> bool {
        self.sms.first().is_some_and(|sm| sm.telemetry().is_on())
    }

    /// Merges every SM's telemetry shard — in SM-id order, like the
    /// statistics shards — into one [`TelemetryReport`], and attaches the
    /// fabric's per-DRAM-module busy time. Unlike stats, telemetry stays
    /// resident: the report is cumulative over the machine's lifetime and
    /// taking it does not reset anything.
    pub fn telemetry_report(&self) -> TelemetryReport {
        let metrics_window = self.sms.first().map_or(self.cfg.divergence_window, |sm| {
            sm.telemetry().metrics_window()
        });
        let mut report = TelemetryReport {
            warp_size: self.cfg.warp_size,
            metrics_window,
            divergence: DivergenceTimeline::new(self.cfg.divergence_window, self.cfg.warp_size),
            windows: Vec::new(),
            events: Vec::new(),
            dropped: 0,
            module_busy: self.mem.module_busy().to_vec(),
            l2: self.mem.l2_stats(),
            icnt_busy: self.mem.icnt_busy().to_vec(),
            icnt_conflicts: self.mem.icnt_conflicts(),
        };
        for sm in &self.sms {
            sm.telemetry().merge_into(&mut report);
        }
        report
    }

    /// Aggregate L1 `(hits, misses, mshr_merges, mshr_stalls)` summed
    /// over the SMs, if the machine models an L1.
    pub fn l1_stats(&self) -> Option<(u64, u64, u64, u64)> {
        if !self.cfg.mem.l1_enabled() {
            return None;
        }
        Some(
            self.sms
                .iter()
                .filter_map(Sm::l1_stats)
                .fold((0, 0, 0, 0), |(h, m, mg, st), (h2, m2, mg2, st2)| {
                    (h + h2, m + m2, mg + mg2, st + st2)
                }),
        )
    }

    /// Every warp trap recorded so far.
    pub fn faults(&self) -> &[Fault] {
        &self.faults
    }

    /// The machine configuration.
    pub fn config(&self) -> &GpuConfig {
        &self.cfg
    }

    /// Host access to device memory (scene upload, result readback).
    pub fn mem_mut(&mut self) -> &mut MemoryFabric {
        &mut self.mem
    }

    /// Read-only access to device memory.
    pub fn mem(&self) -> &MemoryFabric {
        &self.mem
    }

    /// The SM array (diagnostics).
    pub fn sms(&self) -> &[Sm] {
        &self.sms
    }

    /// Statistics accumulated so far.
    pub fn stats(&self) -> &SimStats {
        &self.stats
    }

    /// Current simulated cycle.
    pub fn now(&self) -> u64 {
        self.now
    }

    /// Idle cycles the event-driven loop jumped over instead of ticking
    /// (cumulative; zero with [`GpuBuilder::force_tick`] or an installed
    /// injector). Diagnostic only — not part of [`SimStats`].
    pub fn skipped_cycles(&self) -> u64 {
        self.skipped_cycles
    }

    /// Number of skip jumps the event-driven loop took (diagnostic).
    pub fn skip_events(&self) -> u64 {
        self.skip_events
    }

    /// Late load results dropped on warps killed mid-flight, summed over
    /// SMs (see `Sm::drain_pending`); zero on any fault-free run.
    pub fn late_write_drops(&self) -> u64 {
        self.sms.iter().map(Sm::late_write_drops).sum()
    }

    /// Captures the complete architectural state of the machine as a
    /// [`Snapshot`]: configuration, device memory (backing stores and DRAM
    /// module timing), every SM (warps, thread contexts, formation unit,
    /// memory frontend, statistics shard), the active launch (program,
    /// pending blocks, dynamic-tid counter), the fault log, and the fault
    /// injector.
    ///
    /// Checkpoints are only possible between [`Gpu::run`] calls — the
    /// inter-cycle barrier where no phase-A work is queued and no fabric
    /// request is in flight — so a machine restored from the snapshot and
    /// run onward is bit-identical to one that was never interrupted, at
    /// every phase-A parallelism level.
    ///
    /// The phase-A parallelism is a host-side tuning knob, not machine
    /// state: it is not captured, and a restored machine starts at the
    /// default (serial) setting — re-apply it with
    /// [`Gpu::with_parallelism`]. Telemetry *metrics* (windowed counters,
    /// the divergence mirror, per-warp PDOM depths) are machine state and
    /// are captured; trace rings are not, so traces restart empty after a
    /// resume.
    ///
    /// # Errors
    ///
    /// Returns an [`EncodeError`] if the loaded program contains an
    /// instruction the 96-bit ISA codec cannot represent (more than one
    /// distinct non-zero immediate operand — assembler output never does).
    pub fn checkpoint(&self) -> Result<Snapshot, EncodeError> {
        let mut enc = Encoder::new();
        checkpoint::put_gpu_config(&mut enc, &self.cfg);
        self.mem.encode_state(&mut enc);
        for sm in &self.sms {
            sm.encode_state(&mut enc);
        }
        enc.put_bool(self.launch.is_some());
        if let Some(l) = &self.launch {
            checkpoint::put_program(&mut enc, &l.program)?;
            enc.put_usize(l.entry_pc);
            enc.put_u32(l.regs_per_thread);
            enc.put_u32(l.ntid);
            enc.put_usize(l.blocks.len());
            for b in &l.blocks {
                enc.put_usize(b.id);
                enc.put_u32(b.next_tid);
                enc.put_u32(b.end_tid);
            }
            enc.put_u32(l.next_dynamic_tid);
        }
        self.stats.encode_state(&mut enc);
        enc.put_u64(self.now);
        enc.put_usize(self.rr_sm);
        enc.put_bool(self.injector.is_some());
        if let Some(i) = &self.injector {
            i.encode_state(&mut enc);
        }
        enc.put_usize(self.faults.len());
        for f in &self.faults {
            f.encode_state(&mut enc);
        }
        Ok(Snapshot::from_payload(enc.into_bytes()))
    }

    /// Rebuilds a machine from a [`Snapshot`] taken by
    /// [`Gpu::checkpoint`]. The restored machine continues bit-identically
    /// to the one that was checkpointed. Derived state (reconvergence
    /// table, fabric view, memory geometry) is recomputed, not stored.
    ///
    /// # Errors
    ///
    /// Returns a [`RestoreError`] when the payload is truncated, carries a
    /// tag or length inconsistent with the captured configuration, or
    /// describes a program that fails revalidation. File-level corruption
    /// is caught earlier, by [`Snapshot::from_bytes`]'s checksum.
    pub fn restore(snapshot: &Snapshot) -> Result<Gpu, RestoreError> {
        let mut dec = Decoder::new(snapshot.payload());
        let cfg = checkpoint::take_gpu_config(&mut dec)?;
        let mut gpu = Gpu::from_config(cfg);
        gpu.mem.restore_state(&mut dec)?;
        for sm in &mut gpu.sms {
            sm.restore_state(&mut dec)?;
        }
        if dec.take_bool()? {
            let program = checkpoint::take_program(&mut dec)?;
            let rtab = ReconvergenceTable::build(&program);
            let entry_pc = dec.take_usize()?;
            let regs_per_thread = dec.take_u32()?;
            let ntid = dec.take_u32()?;
            let nblocks = dec.take_len(16)?;
            let blocks = (0..nblocks)
                .map(|_| {
                    Ok(PendingBlock {
                        id: dec.take_usize()?,
                        next_tid: dec.take_u32()?,
                        end_tid: dec.take_u32()?,
                    })
                })
                .collect::<Result<VecDeque<_>, CodecError>>()?;
            let next_dynamic_tid = dec.take_u32()?;
            gpu.launch = Some(ActiveLaunch {
                program,
                rtab,
                entry_pc,
                regs_per_thread,
                ntid,
                blocks,
                next_dynamic_tid,
            });
        }
        gpu.stats.restore_state(&mut dec)?;
        gpu.now = dec.take_u64()?;
        gpu.rr_sm = dec.take_usize()?;
        if dec.take_bool()? {
            gpu.injector = Some(Injector::restore_state(&mut dec)?);
        }
        let nfaults = dec.take_len(25)?;
        gpu.faults = (0..nfaults)
            .map(|_| Fault::restore_state(&mut dec))
            .collect::<Result<_, CodecError>>()?;
        if !dec.is_finished() {
            return Err(RestoreError::Invalid(format!(
                "{} trailing payload bytes",
                dec.remaining()
            )));
        }
        Ok(gpu)
    }

    /// Registers a kernel launch. Threads are dispatched to SMs over the
    /// following cycles as resources allow.
    ///
    /// Sequential launches are supported (e.g. a primary-ray pass followed
    /// by a shadow-ray pass): a new launch may be registered once the
    /// previous one has fully drained.
    ///
    /// # Errors
    ///
    /// Rejects the launch — without touching machine state — when the
    /// previous launch has not drained, the launch has zero threads, the
    /// block size is not a positive multiple of the warp size, the entry
    /// point does not exist, the program spawns without μ-kernel hardware,
    /// or it spawns more distinct μ-kernels than the LUT has lines.
    pub fn launch(&mut self, launch: Launch) -> Result<(), LaunchError> {
        if self.launch.is_some() {
            if !self.is_done() {
                return Err(LaunchError::LaunchActive);
            }
            self.launch = None;
        }
        if launch.num_threads == 0 {
            return Err(LaunchError::NoThreads);
        }
        if launch.threads_per_block == 0
            || !launch.threads_per_block.is_multiple_of(self.cfg.warp_size)
        {
            return Err(LaunchError::BadBlockSize {
                threads_per_block: launch.threads_per_block,
                warp_size: self.cfg.warp_size,
            });
        }
        let entry_pc = launch
            .program
            .entry(&launch.entry)
            .ok_or_else(|| LaunchError::UnknownEntry {
                entry: launch.entry.clone(),
            })?
            .pc;
        if !launch.program.spawn_sites().is_empty() {
            let Some(dmk) = &self.cfg.dmk else {
                return Err(LaunchError::SpawnHardwareMissing);
            };
            let targets = launch.program.spawn_targets().len();
            let capacity = dmk.num_ukernels as usize;
            if targets > capacity {
                return Err(LaunchError::LutCapacityExceeded { targets, capacity });
            }
        }
        let rtab = ReconvergenceTable::build(&launch.program);
        let res = launch.program.resource_usage();
        self.mem.configure_local(res.local_bytes);
        let mut blocks = VecDeque::new();
        let mut tid = 0u32;
        let mut id = 0usize;
        while tid < launch.num_threads {
            let end = (tid + launch.threads_per_block).min(launch.num_threads);
            blocks.push_back(PendingBlock {
                id,
                next_tid: tid,
                end_tid: end,
            });
            tid = end;
            id += 1;
        }
        self.launch = Some(ActiveLaunch {
            rtab,
            entry_pc,
            regs_per_thread: res.registers.max(1),
            ntid: launch.num_threads,
            blocks,
            next_dynamic_tid: launch.num_threads,
            program: launch.program,
        });
        Ok(())
    }

    /// Returns whether any dispatch-side activity happened (warps
    /// admitted, partials forced out, or an injected event fired) — the
    /// event-driven loop must not skip over a cycle that changed state.
    #[allow(clippy::too_many_arguments)]
    fn dispatch_for_sm(
        sm: &mut Sm,
        launch: &mut ActiveLaunch,
        cfg: &GpuConfig,
        stats: &mut SimStats,
        injector: Option<&Injector>,
        now: u64,
        ctx: &ExecCtx<'_>,
    ) -> bool {
        // 1. Dynamic warps have scheduling priority (§IV-D).
        let mut active = sm.drain_dynamic(&mut launch.next_dynamic_tid, now, ctx) > 0;

        // Injected state-slot exhaustion: pretend the spawn-memory state
        // records are all taken, starving launch admission this cycle
        // (first-class back-pressure: blocks simply wait).
        if injector.is_some_and(|i| i.fires(InjectedFault::StateSlotsExhausted, now)) {
            stats.injected_events += 1;
            return true;
        }

        // 2. Launch-time work.
        match cfg.scheduling {
            SchedulingModel::Block => {
                while let Some(front) = launch.blocks.front() {
                    let block_threads = front.end_tid - front.next_tid;
                    if !sm.fits_block(block_threads, launch.regs_per_thread, true) {
                        break;
                    }
                    let Some(mut block) = launch.blocks.pop_front() else {
                        break;
                    };
                    while block.next_tid < block.end_tid {
                        let n = cfg.warp_size.min(block.end_tid - block.next_tid);
                        let tids: Vec<u32> = (block.next_tid..block.next_tid + n).collect();
                        sm.admit_launch_warp(&tids, launch.entry_pc, Some(block.id), now, ctx);
                        block.next_tid += n;
                        active = true;
                    }
                }
            }
            SchedulingModel::Warp => {
                while let Some(front) = launch.blocks.front_mut() {
                    let n = cfg.warp_size.min(front.end_tid - front.next_tid);
                    if n == 0 {
                        launch.blocks.pop_front();
                        continue;
                    }
                    if !sm.fits_warp(n, launch.regs_per_thread, true) {
                        break;
                    }
                    let tids: Vec<u32> = (front.next_tid..front.next_tid + n).collect();
                    sm.admit_launch_warp(&tids, launch.entry_pc, None, now, ctx);
                    front.next_tid += n;
                    active = true;
                    if front.next_tid == front.end_tid {
                        launch.blocks.pop_front();
                    }
                }
            }
        }

        // 3. End-of-application: force partial warps out when this SM can
        //    never receive more work (§IV-D).
        if launch.blocks.is_empty() && !sm.has_live_warps() {
            if let Some(f) = sm.formation() {
                if f.fifo_len() == 0 && f.partial_threads() > 0 {
                    active |= sm.force_out_partials(&mut launch.next_dynamic_tid, now, ctx) > 0;
                }
            }
        }
        active
    }

    /// Whether all work has drained.
    fn is_done(&mut self) -> bool {
        let Some(launch) = &self.launch else {
            return true;
        };
        if !launch.blocks.is_empty() {
            return false;
        }
        for sm in &mut self.sms {
            if sm.has_live_warps() {
                return false;
            }
            if let Some(f) = sm.formation() {
                if !f.is_idle() {
                    return false;
                }
            }
        }
        true
    }

    /// A monotone counter that advances whenever the machine makes forward
    /// progress in the thread-retirement sense (used by the watchdog).
    /// Sums the merged base stats plus every SM's live shard.
    fn progress_count(&self) -> u64 {
        let mut count =
            self.stats.threads_retired + self.stats.threads_spawned + self.stats.threads_killed;
        for sm in &self.sms {
            let s = sm.stats();
            count += s.threads_retired + s.threads_spawned + s.threads_killed;
        }
        count
    }

    /// Merges every SM's statistics shard into the base stats and
    /// consolidates the cycle count — the single place `stats.cycles` is
    /// written.
    fn finish_run(&mut self) {
        for sm in &mut self.sms {
            let shard = sm.take_stats(SimStats::new(
                self.cfg.divergence_window,
                self.cfg.warp_size,
            ));
            self.stats.merge(&shard);
        }
        self.stats.cycles = self.now;
    }

    /// Snapshot of every SM for the watchdog's deadlock report.
    fn deadlock_diagnostics(&mut self) -> DeadlockDiagnostics {
        DeadlockDiagnostics {
            cycle: self.now,
            watchdog_cycles: self.cfg.watchdog_cycles,
            pending_blocks: self.launch.as_ref().map_or(0, |l| l.blocks.len()),
            sms: self.sms.iter_mut().map(Sm::snapshot).collect(),
        }
    }

    /// Runs until completion or for at most `max_cycles` cycles.
    ///
    /// A warp trap is handled per [`GpuConfig::fault_policy`]: under
    /// [`FaultPolicy::KillWarp`] the faulting warp is discarded (recorded
    /// in [`SimStats`] and [`RunSummary::faults`]) and the run continues.
    /// If no forward progress is made for [`GpuConfig::watchdog_cycles`]
    /// consecutive cycles while work remains, the run stops with
    /// [`RunOutcome::Deadlock`] carrying per-SM diagnostics.
    ///
    /// # Errors
    ///
    /// Under [`FaultPolicy::Abort`], the first warp trap stops the
    /// simulation with [`SimError::Fault`]. The machine state is left at
    /// the faulting cycle for inspection.
    pub fn run(&mut self, max_cycles: u64) -> Result<RunSummary, SimError> {
        // Clone the immutable per-launch context out of `self` so worker
        // threads can borrow it while the cycle loop mutates the rest of
        // the machine. A `Program` is a few kilobytes; this happens once
        // per run, not per cycle.
        let per_launch = self
            .launch
            .as_ref()
            .map(|l| (l.program.clone(), l.rtab.clone(), l.regs_per_thread, l.ntid));
        let result = match &per_launch {
            None => Ok(RunOutcome::Completed),
            Some((program, rtab, regs_per_thread, ntid)) => {
                let ctx = ExecCtx {
                    program,
                    rtab,
                    regs_per_thread: *regs_per_thread,
                    ntid: *ntid,
                };
                let view = self.mem.view();
                let injector = self.injector.clone();
                let nworkers = self.parallel.min(self.sms.len()).max(1);
                if nworkers <= 1 {
                    self.run_cycles(max_cycles, &ctx, &view, injector.as_ref(), None)
                } else {
                    thread::scope(|s| {
                        let pool = WorkerPool::spawn(s, nworkers, &ctx, &view, injector.as_ref());
                        self.run_cycles(max_cycles, &ctx, &view, injector.as_ref(), Some(&pool))
                    })
                }
            }
        };
        self.finish_run();
        let outcome = result?;
        let mut dmk = DmkStats::default();
        for sm in &self.sms {
            if let Some(f) = sm.formation() {
                let s = f.stats();
                dmk.spawn_instructions += s.spawn_instructions;
                dmk.threads_spawned += s.threads_spawned;
                dmk.warps_completed += s.warps_completed;
                dmk.partial_warps_forced += s.partial_warps_forced;
                dmk.partial_threads_forced += s.partial_threads_forced;
                dmk.max_fifo_depth = dmk.max_fifo_depth.max(s.max_fifo_depth);
                dmk.max_blocks_in_use = dmk.max_blocks_in_use.max(s.max_blocks_in_use);
                dmk.spawn_stalls += s.spawn_stalls;
            }
        }
        let mut traffic = self.mem.traffic().clone();
        for sm in &self.sms {
            traffic.merge(sm.traffic());
        }
        Ok(RunSummary {
            outcome,
            stats: self.stats.clone(),
            traffic,
            dmk,
            faults: self.faults.clone(),
        })
    }

    /// Phase B on a hierarchy machine: stage the first `commit` SMs'
    /// requests (applying functional ops in SM-id order, like the legacy
    /// drain), arbitrate the whole batch through the banked interconnect
    /// and L2, then scatter ready times back and commit. Both the
    /// fault-free path (`commit == num_sms`) and the abort path
    /// (`commit == fault.sm + 1`) share this, so a faulting cycle can
    /// never leak committed traffic past the interconnect accounting.
    fn hierarchy_drain(&mut self, now: u64, ctx: &ExecCtx<'_>, commit: usize) {
        let mut batch = std::mem::take(&mut self.batch_buf);
        for sm in &mut self.sms[..commit] {
            sm.stage_pending(now, &mut self.mem, &mut batch);
        }
        let ready = self.mem.service_batch(now, &batch);
        for (b, &r) in batch.iter().zip(&ready) {
            self.sms[b.sm].note_access_ready(b.access, r);
        }
        for sm in &mut self.sms[..commit] {
            sm.commit_staged();
            sm.reap_finished(now, ctx);
        }
        batch.clear();
        self.batch_buf = batch;
    }

    /// The cycle loop: dispatch, phase A (possibly across the worker
    /// pool), fault handling, phase B, watchdog — and, after a fully idle
    /// cycle, a jump straight to the next cycle where anything can happen.
    #[allow(clippy::expect_used)]
    fn run_cycles(
        &mut self,
        max_cycles: u64,
        ctx: &ExecCtx<'_>,
        view: &FabricView,
        injector: Option<&Injector>,
        pool: Option<&WorkerPool>,
    ) -> Result<RunOutcome, SimError> {
        let start = self.now;
        let mut last_progress = self.now;
        let mut last_count = self.progress_count();
        // An injector keys events off absolute cycle numbers, so every
        // cycle must actually tick for `fires(_, now)` to be observed.
        let can_skip = !self.force_tick && injector.is_none();
        // Launch-queue generation for the dispatch gate below: bumped
        // whenever the block queue's observable front `(len, next_tid)`
        // changes. An SM whose own state is clean *and* which already saw
        // the current generation would get a provably no-op dispatch call,
        // so the loop skips it. Both are loop-locals: the first cycle of
        // every `run_cycles` call dispatches unconditionally.
        let mut blocks_gen: u64 = 1;
        let mut dispatch_seen: Vec<u64> = vec![0; self.sms.len()];
        loop {
            let done = self.is_done();
            if done || self.now - start >= max_cycles {
                return Ok(if done {
                    RunOutcome::Completed
                } else {
                    RunOutcome::CycleLimit
                });
            }
            // Dispatch is serial, rotated so SM 0 is not structurally
            // favored for launch work.
            let n = self.sms.len();
            let mut dispatched = false;
            {
                let launch = self.launch.as_mut().expect("is_done saw a launch");
                // `dispatch_for_sm` runs to a fixpoint per call and reads
                // only the block queue's front, the SM's own state, and
                // the injector. With no injector, an SM that is clean
                // (`!dispatch_dirty`) and has already seen the current
                // block-queue generation would therefore get a no-op call
                // returning `false` — skipping it leaves `dispatched` and
                // all state exactly as the call would have.
                let gate = injector.is_none();
                for k in 0..n {
                    let i = (self.rr_sm + k) % n;
                    if gate && !self.sms[i].dispatch_dirty() && dispatch_seen[i] == blocks_gen {
                        continue;
                    }
                    let before = (
                        launch.blocks.len(),
                        launch.blocks.front().map(|b| b.next_tid),
                    );
                    dispatched |= Self::dispatch_for_sm(
                        &mut self.sms[i],
                        launch,
                        &self.cfg,
                        &mut self.stats,
                        injector,
                        self.now,
                        ctx,
                    );
                    let after = (
                        launch.blocks.len(),
                        launch.blocks.front().map(|b| b.next_tid),
                    );
                    if after != before {
                        blocks_gen = blocks_gen.wrapping_add(1);
                    }
                    self.sms[i].clear_dispatch_dirty();
                    dispatch_seen[i] = blocks_gen;
                }
            }
            // Phase A: every SM steps against private state only, queueing
            // off-chip work. Faults come back in SM-id order either way.
            let (faults, issued) = match pool {
                Some(pool) => pool.step_all(self.now, &mut self.sms),
                None => {
                    let mut faults = Vec::new();
                    let mut issued = 0u64;
                    for sm in &mut self.sms {
                        match sm.step(self.now, ctx, view, injector) {
                            Ok(true) => issued += 1,
                            Ok(false) => {}
                            Err(f) => faults.push(f),
                        }
                    }
                    (faults, issued)
                }
            };
            let had_faults = !faults.is_empty();
            let mut abort: Option<Fault> = None;
            for fault in faults {
                match self.cfg.fault_policy {
                    FaultPolicy::Abort => {
                        // Record only the first fault in SM order: under the
                        // serial model later SMs never got to step.
                        if abort.is_none() {
                            self.stats.faults += 1;
                            self.faults.push(fault.clone());
                            abort = Some(fault);
                        }
                    }
                    FaultPolicy::KillWarp => {
                        self.stats.faults += 1;
                        self.faults.push(fault.clone());
                        self.sms[fault.sm].kill_warp(fault.warp);
                    }
                }
            }
            // Phase B: the fabric drains pending queues serially in SM-id
            // order — the only place off-chip functional state mutates.
            if let Some(fault) = abort {
                // Commit only SMs at or before the faulting one; under the
                // serial model the rest never reached memory this cycle.
                // The committed SMs go through the same phase-B machinery
                // as a fault-free cycle (batched interconnect/L2 on the
                // hierarchy machine), so post-fault fabric state never
                // diverges from what the normal drain would have produced.
                for i in (fault.sm + 1)..n {
                    self.sms[i].discard_pending();
                }
                if self.cfg.mem.hierarchy_enabled() {
                    self.hierarchy_drain(self.now, ctx, fault.sm + 1);
                } else {
                    for i in 0..=fault.sm {
                        self.sms[i].drain_pending(self.now, &mut self.mem);
                        self.sms[i].reap_finished(self.now, ctx);
                    }
                }
                return Err(SimError::Fault(fault));
            }
            let now = self.now;
            if self.cfg.mem.hierarchy_enabled() {
                self.hierarchy_drain(now, ctx, n);
            } else {
                for sm in &mut self.sms {
                    sm.drain_pending(now, &mut self.mem);
                    sm.reap_finished(now, ctx);
                }
            }
            self.rr_sm = (self.rr_sm + 1) % n.max(1);
            self.now += 1;

            let count = self.progress_count();
            if count != last_count {
                last_count = count;
                last_progress = self.now;
            }
            if self.now - last_progress >= self.cfg.watchdog_cycles {
                self.stats.watchdog_deadlocks += 1;
                return Ok(RunOutcome::Deadlock {
                    diagnostics: self.deadlock_diagnostics(),
                });
            }

            // Event-driven skip. The cycle just executed was fully idle —
            // nothing was dispatched, issued, or faulted — so until some
            // warp's `ready_at` arrives the machine is frozen: dispatch
            // preconditions can only change when a warp retires, pending
            // queues drain the same cycle they fill (the fabric retires
            // requests at service time, so it holds no in-flight state),
            // and every idle cycle does identical per-SM bookkeeping.
            // Jump `now` to the earliest of next warp wake-up, the cycle
            // limit, and the watchdog deadline, recording the idle span
            // in bulk. Byte-identical to ticking through it (DESIGN.md
            // §13); `force_tick` disables this for differential testing.
            if can_skip && !dispatched && issued == 0 && !had_faults {
                let wake = self
                    .sms
                    .iter_mut()
                    .filter_map(Sm::next_issue_at)
                    .min()
                    .unwrap_or(u64::MAX);
                let target = wake
                    .max(self.now)
                    .min(start + max_cycles)
                    .min(last_progress + self.cfg.watchdog_cycles);
                if target > self.now {
                    let k = target - self.now;
                    let from = self.now;
                    for sm in &mut self.sms {
                        sm.record_idle_span(from, k);
                    }
                    self.rr_sm = ((self.rr_sm as u64 + k) % n.max(1) as u64) as usize;
                    self.now = target;
                    self.skipped_cycles += k;
                    self.skip_events += 1;
                    if self.now - last_progress >= self.cfg.watchdog_cycles {
                        self.stats.watchdog_deadlocks += 1;
                        return Ok(RunOutcome::Deadlock {
                            diagnostics: self.deadlock_diagnostics(),
                        });
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmk_core::DmkConfig;
    use simt_isa::assemble_named;
    use simt_mem::MemConfig;

    fn tiny_dmk() -> DmkConfig {
        DmkConfig {
            warp_size: 4,
            threads_per_sm: 32,
            state_bytes: 16,
            num_ukernels: 4,
            fifo_capacity: 32,
        }
    }

    /// tid*2 written to global[tid*4].
    const DOUBLE_SRC: &str = r#"
        .kernel main
        main:
            mov.u32 r1, %tid
            mul.lo.s32 r2, r1, 2
            mul.lo.s32 r3, r1, 4
            st.global.u32 [r3+0], r2
            exit
    "#;

    fn run_simple(cfg: GpuConfig, threads: u32) -> (Gpu, RunSummary) {
        let program = assemble_named("double", DOUBLE_SRC).unwrap();
        let mut gpu = Gpu::builder(cfg).build();
        gpu.mem_mut().alloc_global(threads * 4, "out");
        gpu.launch(Launch {
            program,
            entry: "main".into(),
            num_threads: threads,
            threads_per_block: 8,
        })
        .expect("launch accepted");
        let summary = gpu.run(1_000_000).expect("fault-free");
        (gpu, summary)
    }

    #[test]
    fn straight_line_kernel_computes_correctly() {
        let (gpu, summary) = run_simple(GpuConfig::tiny(), 64);
        assert_eq!(summary.outcome, RunOutcome::Completed);
        assert_eq!(summary.stats.threads_launched, 64);
        assert_eq!(summary.stats.threads_retired, 64);
        assert_eq!(summary.stats.lineages_completed, 64);
        for tid in 0..64u32 {
            assert_eq!(
                gpu.mem().read_u32(simt_isa::Space::Global, tid * 4),
                tid * 2
            );
        }
    }

    #[test]
    fn block_scheduling_also_completes() {
        let mut cfg = GpuConfig::tiny();
        cfg.scheduling = SchedulingModel::Block;
        let (_, summary) = run_simple(cfg, 64);
        assert_eq!(summary.outcome, RunOutcome::Completed);
        assert_eq!(summary.stats.threads_retired, 64);
    }

    #[test]
    fn divergent_loop_executes_correct_trip_counts() {
        // Each thread loops tid%4+1 times, accumulating into global memory.
        let src = r#"
            .kernel main
            main:
                mov.u32 r1, %tid
                and.b32 r2, r1, 3
                add.s32 r2, r2, 1     ; trips = tid%4 + 1
                mov.u32 r3, 0         ; acc
            loop:
                add.s32 r3, r3, 1
                sub.s32 r2, r2, 1
                setp.gt.s32 p0, r2, 0
                @p0 bra loop
                mul.lo.s32 r4, r1, 4
                st.global.u32 [r4+0], r3
                exit
        "#;
        let program = assemble_named("loopy", src).unwrap();
        let mut gpu = Gpu::builder(GpuConfig::tiny()).build();
        gpu.mem_mut().alloc_global(32 * 4, "out");
        gpu.launch(Launch {
            program,
            entry: "main".into(),
            num_threads: 32,
            threads_per_block: 8,
        })
        .expect("launch accepted");
        let summary = gpu.run(1_000_000).expect("fault-free");
        assert_eq!(summary.outcome, RunOutcome::Completed);
        for tid in 0..32u32 {
            assert_eq!(
                gpu.mem().read_u32(simt_isa::Space::Global, tid * 4),
                tid % 4 + 1,
                "thread {tid}"
            );
        }
        // The loop diverges, so some issues must have had < 4 active lanes.
        let w: u64 = summary
            .stats
            .divergence
            .windows()
            .iter()
            .map(|b| b[1..4].iter().sum::<u64>())
            .sum();
        assert!(w > 0, "expected divergent issues");
    }

    #[test]
    fn spawn_chain_continues_lineage() {
        // Launch threads save tid to their state record and spawn `child`;
        // child loads the state and writes tid*3 to global memory.
        let src = r#"
            .kernel main
            .kernel child
            .spawnstate 16
            main:
                mov.u32 r1, %tid
                mov.u32 r2, %spawnmem     ; launch: state address directly
                st.spawn.u32 [r2+0], r1
                spawn $child, r2
                exit
            child:
                mov.u32 r2, %spawnmem     ; dynamic: formation slot
                ld.spawn.u32 r2, [r2+0]   ; -> state pointer
                ld.spawn.u32 r1, [r2+0]   ; restore tid
                mul.lo.s32 r3, r1, 3
                mul.lo.s32 r4, r1, 4
                st.global.u32 [r4+0], r3
                exit
        "#;
        let program = assemble_named("spawny", src).unwrap();
        let mut cfg = GpuConfig::tiny();
        cfg.dmk = Some(tiny_dmk());
        let mut gpu = Gpu::builder(cfg).build();
        gpu.mem_mut().alloc_global(64 * 4, "out");
        gpu.launch(Launch {
            program,
            entry: "main".into(),
            num_threads: 64,
            threads_per_block: 8,
        })
        .expect("launch accepted");
        let summary = gpu.run(2_000_000).expect("fault-free");
        assert_eq!(summary.outcome, RunOutcome::Completed);
        for tid in 0..64u32 {
            assert_eq!(
                gpu.mem().read_u32(simt_isa::Space::Global, tid * 4),
                tid * 3,
                "thread {tid}"
            );
        }
        // Every launch thread spawned exactly one child.
        assert_eq!(summary.stats.threads_spawned, 64);
        assert_eq!(summary.stats.threads_retired, 128);
        // A lineage completes only at the child.
        assert_eq!(summary.stats.lineages_completed, 64);
        assert_eq!(summary.dmk.threads_spawned, 64);
        assert!(summary.dmk.warps_completed + summary.dmk.partial_warps_forced > 0);
    }

    #[test]
    fn spawn_without_dmk_hardware_is_rejected() {
        let src = r#"
            .kernel main
            .kernel child
            main:
                spawn $child, r1
                exit
            child:
                exit
        "#;
        let program = assemble_named("bad", src).unwrap();
        let mut gpu = Gpu::builder(GpuConfig::tiny()).build();
        let result = gpu.launch(Launch {
            program,
            entry: "main".into(),
            num_threads: 4,
            threads_per_block: 4,
        });
        assert_eq!(result, Err(crate::fault::LaunchError::SpawnHardwareMissing));
    }

    #[test]
    fn cycle_limit_stops_early() {
        let (_, summary) = {
            let program = assemble_named("double", DOUBLE_SRC).unwrap();
            let mut gpu = Gpu::builder(GpuConfig::tiny()).build();
            gpu.mem_mut().alloc_global(1024 * 4, "out");
            gpu.launch(Launch {
                program,
                entry: "main".into(),
                num_threads: 1024,
                threads_per_block: 8,
            })
            .expect("launch accepted");
            let s = gpu.run(10).expect("fault-free");
            (gpu, s)
        };
        assert_eq!(summary.outcome, RunOutcome::CycleLimit);
        assert_eq!(summary.stats.cycles, 10);
    }

    #[test]
    fn ideal_memory_is_faster() {
        // A load-dependent chain so memory latency is actually on the
        // critical path (stores alone are fire-and-forget).
        let src = r#"
            .kernel main
            main:
                mov.u32 r1, %tid
                mul.lo.s32 r2, r1, 4
                ld.global.u32 r3, [r2+0]
                add.s32 r3, r3, 1
                st.global.u32 [r2+0], r3
                ld.global.u32 r4, [r2+0]
                add.s32 r4, r4, 1
                st.global.u32 [r2+0], r4
                exit
        "#;
        let run = |ideal: bool| {
            let mut cfg = GpuConfig::tiny();
            cfg.mem = MemConfig::fx5800().with_ideal(ideal);
            let program = assemble_named("chain", src).unwrap();
            let mut gpu = Gpu::builder(cfg).build();
            gpu.mem_mut().alloc_global(256 * 4, "buf");
            gpu.launch(Launch {
                program,
                entry: "main".into(),
                num_threads: 256,
                threads_per_block: 8,
            })
            .expect("launch accepted");
            gpu.run(10_000_000).expect("fault-free")
        };
        let slow = run(false);
        let fast = run(true);
        assert!(
            fast.stats.cycles < slow.stats.cycles,
            "ideal {} !< real {}",
            fast.stats.cycles,
            slow.stats.cycles
        );
    }

    #[test]
    fn ipc_counts_thread_instructions() {
        let (_, summary) = run_simple(GpuConfig::tiny(), 64);
        // 5 instructions per thread.
        assert_eq!(summary.stats.thread_instructions, 64 * 5);
        assert!(summary.stats.ipc() > 0.0);
    }

    /// A load/store kernel with divergence, run at several phase-A
    /// parallelism levels: stats, traffic, and memory contents must be
    /// bit-identical (the tentpole determinism claim).
    #[test]
    fn parallel_execution_is_bit_identical_to_serial() {
        let src = r#"
            .kernel main
            main:
                mov.u32 r1, %tid
                mul.lo.s32 r2, r1, 4
                ld.global.u32 r3, [r2+0]
                and.b32 r4, r1, 3
                setp.gt.s32 p0, r4, 1
                @p0 add.s32 r3, r3, 100
                add.s32 r3, r3, 1
                st.global.u32 [r2+0], r3
                ld.global.u32 r4, [r2+0]
                st.global.u32 [r2+0], r4
                exit
        "#;
        let run_at = |parallel: usize| {
            let program = assemble_named("mix", src).unwrap();
            let mut gpu = Gpu::builder(GpuConfig::tiny())
                .parallelism(parallel)
                .build();
            gpu.mem_mut().alloc_global(128 * 4, "buf");
            gpu.launch(Launch {
                program,
                entry: "main".into(),
                num_threads: 128,
                threads_per_block: 8,
            })
            .expect("launch accepted");
            let summary = gpu.run(1_000_000).expect("fault-free");
            let words: Vec<u32> = (0..128u32)
                .map(|t| gpu.mem().read_u32(simt_isa::Space::Global, t * 4))
                .collect();
            (summary, words)
        };
        let (s1, w1) = run_at(1);
        for parallel in [2, 4] {
            let (sp, wp) = run_at(parallel);
            assert_eq!(s1.stats, sp.stats, "stats diverged at parallel={parallel}");
            assert_eq!(
                s1.traffic, sp.traffic,
                "traffic diverged at parallel={parallel}"
            );
            assert_eq!(w1, wp, "memory diverged at parallel={parallel}");
            assert_eq!(s1.outcome, sp.outcome);
        }
    }

    /// Interrupting a run at an arbitrary cycle, checkpointing, restoring,
    /// and continuing must be bit-identical to the uninterrupted run —
    /// stats, traffic, fault log, and memory contents.
    #[test]
    fn checkpoint_resume_is_bit_identical() {
        let src = r#"
            .kernel main
            main:
                mov.u32 r1, %tid
                mul.lo.s32 r2, r1, 4
                ld.global.u32 r3, [r2+0]
                and.b32 r4, r1, 3
                setp.gt.s32 p0, r4, 1
                @p0 add.s32 r3, r3, 100
                add.s32 r3, r3, 1
                st.global.u32 [r2+0], r3
                exit
        "#;
        let fresh = || {
            let program = assemble_named("mix", src).unwrap();
            let mut gpu = Gpu::builder(GpuConfig::tiny()).build();
            gpu.mem_mut().alloc_global(128 * 4, "buf");
            gpu.launch(Launch {
                program,
                entry: "main".into(),
                num_threads: 128,
                threads_per_block: 8,
            })
            .expect("launch accepted");
            gpu
        };
        let words = |gpu: &Gpu| -> Vec<u32> {
            (0..128u32)
                .map(|t| gpu.mem().read_u32(simt_isa::Space::Global, t * 4))
                .collect()
        };
        let mut reference = fresh();
        let ref_summary = reference.run(1_000_000).expect("fault-free");
        assert_eq!(ref_summary.outcome, RunOutcome::Completed);

        for interrupt_at in [1u64, 7, 40] {
            let mut gpu = fresh();
            gpu.run(interrupt_at).expect("fault-free prefix");
            let bytes = gpu.checkpoint().expect("encodable").to_bytes();
            let snapshot = Snapshot::from_bytes(&bytes).expect("frame intact");
            let mut resumed = Gpu::restore(&snapshot).expect("restores");
            assert_eq!(resumed.now(), gpu.now());
            let summary = resumed.run(1_000_000).expect("fault-free tail");
            assert_eq!(
                summary.stats, ref_summary.stats,
                "stats diverged after resume at cycle {interrupt_at}"
            );
            assert_eq!(
                summary.traffic, ref_summary.traffic,
                "traffic diverged after resume at cycle {interrupt_at}"
            );
            assert_eq!(summary.outcome, ref_summary.outcome);
            assert_eq!(
                words(&resumed),
                words(&reference),
                "memory diverged after resume at cycle {interrupt_at}"
            );
        }
    }

    /// Checkpoint/resume also commutes with dynamic μ-kernel state: the
    /// formation unit, spawn memory, state slots, and dynamic-tid counter
    /// all survive the round trip.
    #[test]
    fn checkpoint_resume_preserves_spawn_state() {
        let src = r#"
            .kernel main
            .kernel child
            .spawnstate 16
            main:
                mov.u32 r1, %tid
                mov.u32 r2, %spawnmem
                st.spawn.u32 [r2+0], r1
                spawn $child, r2
                exit
            child:
                mov.u32 r2, %spawnmem
                ld.spawn.u32 r2, [r2+0]
                ld.spawn.u32 r1, [r2+0]
                mul.lo.s32 r3, r1, 3
                mul.lo.s32 r4, r1, 4
                st.global.u32 [r4+0], r3
                exit
        "#;
        let fresh = || {
            let program = assemble_named("spawny", src).unwrap();
            let mut cfg = GpuConfig::tiny();
            cfg.dmk = Some(tiny_dmk());
            let mut gpu = Gpu::builder(cfg).build();
            gpu.mem_mut().alloc_global(64 * 4, "out");
            gpu.launch(Launch {
                program,
                entry: "main".into(),
                num_threads: 64,
                threads_per_block: 8,
            })
            .expect("launch accepted");
            gpu
        };
        let mut reference = fresh();
        let ref_summary = reference.run(2_000_000).expect("fault-free");
        assert_eq!(ref_summary.outcome, RunOutcome::Completed);

        // Interrupt mid-spawn-traffic, then every 10 cycles after.
        for interrupt_at in [5u64, 15, 25, 60] {
            let mut gpu = fresh();
            gpu.run(interrupt_at).expect("fault-free prefix");
            let snapshot = gpu.checkpoint().expect("encodable");
            let mut resumed = Gpu::restore(&snapshot).expect("restores");
            let summary = resumed.run(2_000_000).expect("fault-free tail");
            assert_eq!(
                summary.stats, ref_summary.stats,
                "stats diverged after resume at cycle {interrupt_at}"
            );
            assert_eq!(summary.dmk, ref_summary.dmk);
            for tid in 0..64u32 {
                assert_eq!(
                    resumed.mem().read_u32(simt_isa::Space::Global, tid * 4),
                    tid * 3,
                    "thread {tid} after resume at cycle {interrupt_at}"
                );
            }
        }
    }

    /// The injector and fault log survive a checkpoint: a restored machine
    /// replays injected events and keeps the cumulative fault history.
    #[test]
    fn checkpoint_preserves_injector_and_fault_log() {
        let program = assemble_named("double", DOUBLE_SRC).unwrap();
        let mut cfg = GpuConfig::tiny();
        cfg.fault_policy = FaultPolicy::KillWarp;
        let mut gpu = Gpu::builder(cfg)
            .injector(Injector::new(3).force(InjectedFault::Trap, 4..6))
            .build();
        gpu.mem_mut().alloc_global(64 * 4, "out");
        gpu.launch(Launch {
            program,
            entry: "main".into(),
            num_threads: 64,
            threads_per_block: 8,
        })
        .expect("launch accepted");
        gpu.run(5).expect("KillWarp absorbs the trap");
        let snapshot = gpu.checkpoint().expect("encodable");
        let resumed = Gpu::restore(&snapshot).expect("restores");
        assert_eq!(resumed.faults(), gpu.faults());
        assert!(!resumed.faults().is_empty(), "trap at cycle 4 recorded");
        assert_eq!(resumed.stats(), gpu.stats());
    }

    /// The event-driven skip must be invisible: a memory-latency kernel
    /// under the real (non-ideal) fabric parks every warp on loads, the
    /// loop jumps over the stall spans, and stats, traffic, memory, and
    /// outcome must be byte-identical to forced per-cycle ticking — at
    /// several parallelism levels and with a cycle budget that lands in
    /// the middle of a skipped span.
    #[test]
    fn skip_to_next_event_is_bit_identical_to_forced_tick() {
        let src = r#"
            .kernel main
            main:
                mov.u32 r1, %tid
                mul.lo.s32 r2, r1, 4
                ld.global.u32 r3, [r2+0]
                add.s32 r3, r3, 1
                st.global.u32 [r2+0], r3
                ld.global.u32 r4, [r2+0]
                add.s32 r4, r4, 1
                st.global.u32 [r2+0], r4
                exit
        "#;
        let run_at = |force_tick: bool, parallel: usize, budget: u64| {
            let program = assemble_named("chain", src).unwrap();
            let mut gpu = Gpu::builder(GpuConfig::tiny())
                .parallelism(parallel)
                .force_tick(force_tick)
                .build();
            gpu.mem_mut().alloc_global(64 * 4, "buf");
            gpu.launch(Launch {
                program,
                entry: "main".into(),
                num_threads: 64,
                threads_per_block: 8,
            })
            .expect("launch accepted");
            let summary = gpu.run(budget).expect("fault-free");
            let words: Vec<u32> = (0..64u32)
                .map(|t| gpu.mem().read_u32(simt_isa::Space::Global, t * 4))
                .collect();
            (summary, words, gpu.skipped_cycles())
        };
        for parallel in [1, 2] {
            for budget in [1_000_000u64, 37] {
                let (st, wt, ticked_skips) = run_at(true, parallel, budget);
                let (ss, ws, skipped) = run_at(false, parallel, budget);
                let what = format!("parallel={parallel} budget={budget}");
                assert_eq!(st.stats, ss.stats, "stats diverged ({what})");
                assert_eq!(st.traffic, ss.traffic, "traffic diverged ({what})");
                assert_eq!(st.outcome, ss.outcome, "outcome diverged ({what})");
                assert_eq!(wt, ws, "memory diverged ({what})");
                assert_eq!(ticked_skips, 0, "force_tick must never skip");
                assert!(skipped > 0, "the loop actually skipped ({what})");
            }
        }
    }

    /// With no warp ever becoming ready (a block that can never fit on
    /// any SM), the skip has no wake-up to jump to and must land exactly
    /// on the watchdog deadline — same deadlock cycle and diagnostics as
    /// ticking through the whole idle wait.
    #[test]
    fn skip_reaches_watchdog_deadlock_identically() {
        let run = |force_tick: bool| {
            let program = assemble_named("double", DOUBLE_SRC).unwrap();
            let mut cfg = GpuConfig::tiny();
            cfg.scheduling = SchedulingModel::Block;
            cfg.watchdog_cycles = 5_000;
            let mut gpu = Gpu::builder(cfg).force_tick(force_tick).build();
            gpu.mem_mut().alloc_global(64 * 4, "out");
            gpu.launch(Launch {
                program,
                entry: "main".into(),
                num_threads: 64,
                threads_per_block: 64, // > max_threads_per_sm: never dispatchable
            })
            .expect("launch accepted");
            let summary = gpu.run(1_000_000).expect("no fault");
            (summary, gpu.skipped_cycles(), gpu.skip_events())
        };
        let (tick, ticked_skips, _) = run(true);
        let (skip, skipped, jumps) = run(false);
        assert_eq!(ticked_skips, 0);
        assert!(skipped > 0 && jumps > 0, "the deadlock wait was skipped");
        assert!(
            matches!(skip.outcome, RunOutcome::Deadlock { .. }),
            "expected deadlock, got {:?}",
            skip.outcome
        );
        assert_eq!(tick.outcome, skip.outcome, "diagnostics diverged");
        assert_eq!(tick.stats, skip.stats);
    }

    /// A load result arriving for a warp that was killed the same cycle
    /// (an imprecise trap flushes the pre-fault lanes' ops with
    /// `wait: false`) must be dropped explicitly — counted, never written
    /// into a dead lane's register file.
    #[test]
    fn killed_warp_load_results_are_dropped() {
        let src = r#"
            .kernel main
            main:
                mov.u32 r1, %tid
                mul.lo.s32 r2, r1, 2
                ld.global.u32 r3, [r2+0]
                exit
        "#;
        let program = assemble_named("oob", src).unwrap();
        let mut cfg = GpuConfig::tiny();
        cfg.fault_policy = FaultPolicy::KillWarp;
        let mut gpu = Gpu::builder(cfg).build();
        // Lane 0 (tid 0 → address 0) loads cleanly; lane 1 (address 2) is
        // misaligned and traps the warp after lane 0's load was queued.
        gpu.mem_mut().alloc_global(16, "out");
        gpu.launch(Launch {
            program,
            entry: "main".into(),
            num_threads: 4,
            threads_per_block: 4,
        })
        .expect("launch accepted");
        let summary = gpu.run(1_000_000).expect("KillWarp absorbs the trap");
        assert_eq!(summary.outcome, RunOutcome::Completed);
        assert_eq!(summary.stats.faults, 1);
        assert_eq!(summary.stats.threads_killed, 4);
        assert_eq!(
            gpu.late_write_drops(),
            1,
            "exactly lane 0's in-flight load was dropped"
        );
    }

    /// Running the same launch twice at the same parallelism is also
    /// reproducible (no hidden nondeterminism from thread scheduling).
    #[test]
    fn repeated_parallel_runs_are_reproducible() {
        let run_once = || {
            let program = assemble_named("double", DOUBLE_SRC).unwrap();
            let mut gpu = Gpu::builder(GpuConfig::tiny()).parallelism(2).build();
            gpu.mem_mut().alloc_global(64 * 4, "out");
            gpu.launch(Launch {
                program,
                entry: "main".into(),
                num_threads: 64,
                threads_per_block: 8,
            })
            .expect("launch accepted");
            gpu.run(1_000_000).expect("fault-free")
        };
        let a = run_once();
        let b = run_once();
        assert_eq!(a.stats, b.stats);
        assert_eq!(a.traffic, b.traffic);
    }
}
