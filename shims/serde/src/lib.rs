//! Offline stand-in for `serde`.
//!
//! Provides the `Serialize`/`Deserialize` names in both the type and macro
//! namespaces so `use serde::{Serialize, Deserialize}` plus
//! `#[derive(Serialize, Deserialize)]` compile unchanged. The traits are
//! inert markers; the derives (from the local `serde_derive` shim) expand to
//! nothing. No serialization happens at runtime in this workspace.

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait standing in for `serde::Serialize`.
pub trait Serialize {}

/// Marker trait standing in for `serde::Deserialize`.
pub trait Deserialize<'de>: Sized {}

/// Marker trait standing in for `serde::de::DeserializeOwned`.
pub trait DeserializeOwned {}

/// Namespace mirror of `serde::de` for code that spells the owned bound.
pub mod de {
    pub use crate::DeserializeOwned;
}
