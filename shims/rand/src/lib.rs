//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no registry access, so this crate provides the
//! exact surface the workspace uses: `rngs::StdRng`, `SeedableRng::
//! seed_from_u64`, `Rng::gen_range` over the primitive range types that
//! appear in the scene/k-d-tree generators, and `Rng::gen_bool`. The
//! generator is SplitMix64 — deterministic, seedable, and statistically fine
//! for test-data generation (it is not the real rand's ChaCha, so seeded
//! streams differ from upstream, which nothing here depends on).

use std::ops::Range;

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Rngs that can be constructed from a seed.
pub trait SeedableRng: Sized {
    /// Builds an RNG from a 64-bit seed.
    fn seed_from_u64(state: u64) -> Self;
}

/// High-level sampling helpers, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value uniformly from `range`.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        unit_f64(self.next_u64()) < p
    }
}

impl<R: RngCore> Rng for R {}

/// Maps 64 random bits to a uniform `f64` in `[0, 1)`.
fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Maps 64 random bits to a uniform `f32` in `[0, 1)`.
fn unit_f32(bits: u64) -> f32 {
    (bits >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
}

/// Primitives that can be sampled uniformly from a half-open range.
///
/// A single generic `SampleRange` impl over this trait (mirroring rand's
/// `SampleUniform`) keeps type inference working for unsuffixed float
/// literals like `rng.gen_range(2.0..3.0)`.
pub trait SampleUniform: Sized {
    /// Draws a uniform sample from `[start, end)`.
    fn sample_range<R: RngCore>(start: Self, end: Self, rng: &mut R) -> Self;
}

macro_rules! int_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore>(start: $t, end: $t, rng: &mut R) -> $t {
                assert!(start < end, "gen_range called with empty range");
                let span = (end as i128 - start as i128) as u128;
                let draw = (rng.next_u64() as u128) % span;
                (start as i128 + draw as i128) as $t
            }
        }
    )*};
}

int_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64);

impl SampleUniform for f32 {
    fn sample_range<R: RngCore>(start: f32, end: f32, rng: &mut R) -> f32 {
        start + (end - start) * unit_f32(rng.next_u64())
    }
}

impl SampleUniform for f64 {
    fn sample_range<R: RngCore>(start: f64, end: f64, rng: &mut R) -> f64 {
        start + (end - start) * unit_f64(rng.next_u64())
    }
}

/// Range types [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Draws one uniform sample from the range.
    fn sample_single<R: RngCore>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_single<R: RngCore>(self, rng: &mut R) -> T {
        T::sample_range(self.start, self.end, rng)
    }
}

/// Concrete RNG implementations.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic seedable RNG (SplitMix64 core).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            StdRng { state }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeded_streams_are_deterministic() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0usize..1000), b.gen_range(0usize..1000));
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(3u32..17);
            assert!((3..17).contains(&v));
            let f = rng.gen_range(-2.0f32..2.0);
            assert!((-2.0..2.0).contains(&f));
            let i = rng.gen_range(-5i32..5);
            assert!((-5..5).contains(&i));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..100 {
            assert!(!rng.gen_bool(0.0));
            assert!(rng.gen_bool(1.0));
        }
    }
}
