//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no registry access, so this crate reimplements
//! the slice of proptest's API the workspace uses: the `proptest!` /
//! `prop_assert*` / `prop_assume!` / `prop_oneof!` macros, the [`Strategy`]
//! trait with range / tuple / `Just` / map / union / vec strategies,
//! `any::<T>()`, `proptest::num::f32::NORMAL`, and
//! [`ProptestConfig::with_cases`].
//!
//! Differences from the real crate, acceptable for this workspace:
//! - Cases are drawn from a per-test RNG seeded by the test's name, so runs
//!   are fully deterministic (no failure-persistence files needed).
//! - Failing inputs are reported but not shrunk.

use std::fmt::Debug;
use std::marker::PhantomData;

/// Deterministic RNG used to generate test cases (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates an RNG from a 64-bit seed.
    pub fn from_seed(seed: u64) -> Self {
        TestRng {
            state: seed ^ 0x5851_f42d_4c95_7f2d,
        }
    }

    /// Returns the next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[0, n)`; `n` must be nonzero.
    pub fn below(&mut self, n: u64) -> u64 {
        self.next_u64() % n
    }
}

/// FNV-1a hash of a string, used to derive a per-test seed from its name.
pub fn fnv(name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Error produced by a failing or rejected test case.
#[derive(Debug)]
pub enum TestCaseError {
    /// The case's assertions failed.
    Fail(String),
    /// The case was filtered out by `prop_assume!`.
    Reject,
}

impl TestCaseError {
    /// True when the case was rejected (not failed).
    pub fn is_reject(&self) -> bool {
        matches!(self, TestCaseError::Reject)
    }
}

/// Result type of one generated test case.
pub type TestCaseResult = Result<(), TestCaseError>;

/// Runner configuration; only `cases` is honoured.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of successful cases required per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` successful cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// A generator of values for property tests.
pub trait Strategy {
    /// The type of value generated.
    type Value: Debug;

    /// Draws one value from the strategy.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        U: Debug,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }
}

/// Object-safe adapter so heterogeneous strategies can share a `Box`.
pub trait DynStrategy<T> {
    /// Draws one value.
    fn generate_dyn(&self, rng: &mut TestRng) -> T;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn generate_dyn(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let draw = (rng.next_u64() as u128) % span;
                (self.start as i128 + draw as i128) as $t
            }
        }
        impl Strategy for std::ops::RangeFrom<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let span = (<$t>::MAX as i128 - self.start as i128) as u128 + 1;
                let draw = (rng.next_u64() as u128) % span;
                (self.start as i128 + draw as i128) as $t
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let draw = (rng.next_u64() as u128) % span;
                (lo as i128 + draw as i128) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64);

impl Strategy for std::ops::Range<f32> {
    type Value = f32;
    fn generate(&self, rng: &mut TestRng) -> f32 {
        let unit = (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32);
        self.start + (self.end - self.start) * unit
    }
}

impl Strategy for std::ops::Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        self.start + (self.end - self.start) * unit
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone + Debug>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Strategy adapter produced by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, U, F> Strategy for Map<S, F>
where
    S: Strategy,
    U: Debug,
    F: Fn(S::Value) -> U,
{
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! tuple_strategy {
    ($(($($name:ident),+))+) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )+};
}

tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, G)
}

/// Uniform choice between boxed alternative strategies (see `prop_oneof!`).
pub struct Union<T> {
    branches: Vec<Box<dyn DynStrategy<T>>>,
}

impl<T> Union<T> {
    /// Builds a union over `branches`; must be non-empty.
    pub fn new(branches: Vec<Box<dyn DynStrategy<T>>>) -> Self {
        assert!(
            !branches.is_empty(),
            "prop_oneof! needs at least one branch"
        );
        Union { branches }
    }
}

impl<T: Debug> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let idx = rng.below(self.branches.len() as u64) as usize;
        self.branches[idx].generate_dyn(rng)
    }
}

/// Types with a canonical whole-domain strategy (see [`any`]).
pub trait Arbitrary: Sized + Debug {
    /// Draws an arbitrary value of this type.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! int_arbitrary {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f32 {
    fn arbitrary(rng: &mut TestRng) -> f32 {
        // Any finite float, sign included.
        let unit = (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32);
        (unit - 0.5) * 2.0e6
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        (unit - 0.5) * 2.0e12
    }
}

/// Strategy returned by [`any`].
pub struct AnyStrategy<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The canonical strategy covering all of `T`.
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(PhantomData)
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};

    /// Strategy for `Vec<S::Value>` with a length drawn from a range.
    pub struct VecStrategy<S> {
        elem: S,
        len: std::ops::Range<usize>,
    }

    /// Generates vectors whose elements come from `elem` and whose length
    /// lies in `len`.
    pub fn vec<S: Strategy>(elem: S, len: std::ops::Range<usize>) -> VecStrategy<S> {
        assert!(len.start < len.end, "empty length range");
        VecStrategy { elem, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.len.end - self.len.start) as u64;
            let n = self.len.start + rng.below(span) as usize;
            (0..n).map(|_| self.elem.generate(rng)).collect()
        }
    }
}

/// Numeric special-value strategies.
pub mod num {
    /// `f32` strategies.
    pub mod f32 {
        use crate::{Strategy, TestRng};

        /// Strategy over normal (non-zero, non-subnormal, finite) `f32`s.
        #[derive(Debug, Clone, Copy)]
        pub struct NormalStrategy;

        /// All normal `f32` values, both signs.
        pub const NORMAL: NormalStrategy = NormalStrategy;

        impl Strategy for NormalStrategy {
            type Value = f32;
            fn generate(&self, rng: &mut TestRng) -> f32 {
                let bits = rng.next_u64();
                let sign = ((bits >> 63) as u32) << 31;
                // Exponent in 1..=254 keeps the value normal and finite.
                let exp = (1 + (bits >> 32) as u32 % 254) << 23;
                let mantissa = (bits as u32) & 0x007f_ffff;
                f32::from_bits(sign | exp | mantissa)
            }
        }
    }
}

/// One-stop imports, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        Arbitrary, Just, ProptestConfig, Strategy, TestCaseError, TestCaseResult,
    };
}

/// Asserts a condition inside a `proptest!` body without panicking.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!(
                "assertion failed: {}",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!($($fmt)+)));
        }
    };
}

/// Asserts equality inside a `proptest!` body without panicking.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (l, r) => {
                if !(*l == *r) {
                    return ::std::result::Result::Err($crate::TestCaseError::Fail(format!(
                        "assertion failed: `{:?}` == `{:?}`",
                        l, r
                    )));
                }
            }
        }
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        match (&$left, &$right) {
            (l, r) => {
                if !(*l == *r) {
                    return ::std::result::Result::Err($crate::TestCaseError::Fail(format!(
                        "assertion failed: `{:?}` == `{:?}`: {}",
                        l,
                        r,
                        format!($($fmt)+)
                    )));
                }
            }
        }
    };
}

/// Asserts inequality inside a `proptest!` body without panicking.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (l, r) => {
                if *l == *r {
                    return ::std::result::Result::Err($crate::TestCaseError::Fail(format!(
                        "assertion failed: `{:?}` != `{:?}`",
                        l, r
                    )));
                }
            }
        }
    };
}

/// Rejects the current case (draws a replacement) when `cond` is false.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
}

/// Uniform choice between strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::Union::new(vec![
            $(::std::boxed::Box::new($strategy) as ::std::boxed::Box<dyn $crate::DynStrategy<_>>,)+
        ])
    };
}

/// Declares property tests. Accepts the same surface syntax as the real
/// `proptest!`: optional `#![proptest_config(..)]`, doc comments and
/// attributes per test, `name in strategy` and `name: Type` parameters.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    ( ($cfg:expr) ) => {};
    ( ($cfg:expr)
      $(#[$attr:meta])*
      fn $name:ident ( $($params:tt)* ) $body:block
      $($rest:tt)*
    ) => {
        $(#[$attr])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut rng = $crate::TestRng::from_seed($crate::fnv(concat!(
                module_path!(),
                "::",
                stringify!($name)
            )));
            let mut accepted: u32 = 0;
            let mut attempts: u32 = 0;
            let max_attempts = config.cases.saturating_mul(16).max(64);
            while accepted < config.cases {
                if attempts >= max_attempts {
                    panic!(
                        "proptest '{}': too many rejected cases ({} accepted of {} wanted)",
                        stringify!($name),
                        accepted,
                        config.cases
                    );
                }
                attempts += 1;
                let outcome: $crate::TestCaseResult = (|| {
                    $crate::__proptest_bind! { rng, $($params)* }
                    $body
                    ::std::result::Result::Ok(())
                })();
                match outcome {
                    ::std::result::Result::Ok(()) => accepted += 1,
                    ::std::result::Result::Err($crate::TestCaseError::Reject) => {}
                    ::std::result::Result::Err($crate::TestCaseError::Fail(msg)) => {
                        panic!(
                            "proptest '{}' failed at case {}: {}",
                            stringify!($name),
                            accepted,
                            msg
                        );
                    }
                }
            }
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_bind {
    ($rng:ident $(,)?) => {};
    ($rng:ident, $name:ident in $strategy:expr) => {
        let $name = $crate::Strategy::generate(&($strategy), &mut $rng);
    };
    ($rng:ident, $name:ident in $strategy:expr, $($rest:tt)*) => {
        let $name = $crate::Strategy::generate(&($strategy), &mut $rng);
        $crate::__proptest_bind! { $rng, $($rest)* }
    };
    ($rng:ident, $name:ident : $ty:ty) => {
        let $name = $crate::Strategy::generate(&$crate::any::<$ty>(), &mut $rng);
    };
    ($rng:ident, $name:ident : $ty:ty, $($rest:tt)*) => {
        let $name = $crate::Strategy::generate(&$crate::any::<$ty>(), &mut $rng);
        $crate::__proptest_bind! { $rng, $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_and_tuples_stay_in_bounds() {
        let mut rng = crate::TestRng::from_seed(1);
        let s = (0u8..64, 1usize..50, -100.0f32..100.0);
        for _ in 0..200 {
            let (a, b, c) = s.generate(&mut rng);
            assert!(a < 64);
            assert!((1..50).contains(&b));
            assert!((-100.0..100.0).contains(&c));
        }
    }

    #[test]
    fn union_covers_all_branches() {
        let mut rng = crate::TestRng::from_seed(2);
        let s = prop_oneof![Just(1u32), Just(2u32), Just(3u32)];
        let mut seen = [false; 4];
        for _ in 0..100 {
            seen[s.generate(&mut rng) as usize] = true;
        }
        assert!(seen[1] && seen[2] && seen[3]);
    }

    #[test]
    fn normal_f32_is_normal() {
        let mut rng = crate::TestRng::from_seed(3);
        for _ in 0..500 {
            let v = crate::num::f32::NORMAL.generate(&mut rng);
            assert!(v.is_normal(), "{v} should be a normal float");
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// The macro itself: mixed binder forms, assume, and asserts.
        #[test]
        fn macro_binders_work(a in 0u32..10, b: bool, v in crate::collection::vec(0u8..4, 1..9)) {
            prop_assume!(!v.is_empty());
            prop_assert!(a < 10, "a was {}", a);
            prop_assert_eq!(b, b);
            prop_assert_ne!(v.len(), 0);
        }
    }
}
