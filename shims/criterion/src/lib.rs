//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no registry access, so this crate provides the
//! benchmark-harness surface the workspace uses (`Criterion`,
//! `benchmark_group`, `Bencher::iter`, `Throughput`, and the
//! `criterion_group!` / `criterion_main!` macros). Instead of statistical
//! sampling it runs each benchmark body a small fixed number of times and
//! prints the mean wall-clock time — enough for `cargo bench` to compile,
//! run, and give a ballpark number without the real dependency.

use std::time::Instant;

/// How many times [`Bencher::iter`] runs the body (first run is warm-up).
const RUNS: u32 = 3;

/// Units for reporting throughput; accepted and echoed, not computed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// Timer handle passed to each benchmark closure.
pub struct Bencher {
    mean_ns: u128,
}

impl Bencher {
    /// Times `body`, storing the mean over a few runs.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut body: F) {
        std::hint::black_box(body()); // warm-up
        let start = Instant::now();
        for _ in 0..RUNS {
            std::hint::black_box(body());
        }
        self.mean_ns = start.elapsed().as_nanos() / RUNS as u128;
    }
}

fn report(name: &str, mean_ns: u128) {
    if mean_ns >= 1_000_000 {
        println!("bench {name:<50} {:>12.3} ms", mean_ns as f64 / 1e6);
    } else {
        println!("bench {name:<50} {:>12.3} µs", mean_ns as f64 / 1e3);
    }
}

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion;

impl Criterion {
    /// Runs a standalone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher { mean_ns: 0 };
        f(&mut b);
        report(name, b.mean_ns);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.to_string(),
        }
    }
}

/// A named group of benchmarks.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the shim ignores sample counts.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility; the shim does not derive rates.
    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    /// Runs one benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher { mean_ns: 0 };
        f(&mut b);
        report(&format!("{}/{}", self.name, name), b.mean_ns);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Prevents the optimizer from eliding a value (re-export convenience).
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Declares a benchmark group function calling each target in order.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark binary's `main`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
