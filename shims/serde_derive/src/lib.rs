//! Offline stand-in for `serde_derive`.
//!
//! The build environment has no registry access, so the real serde stack is
//! unavailable. The workspace only uses `#[derive(Serialize, Deserialize)]`
//! as forward-looking annotations (nothing is serialized at runtime any
//! more), so the derives here accept the same syntax — including
//! `#[serde(...)]` helper attributes — and expand to nothing.

use proc_macro::TokenStream;

/// Accepts `#[derive(Serialize)]` (with `#[serde(...)]` attributes) and
/// expands to nothing.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Accepts `#[derive(Deserialize)]` (with `#[serde(...)]` attributes) and
/// expands to nothing.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
