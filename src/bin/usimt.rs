//! `usimt` — assemble and run kernels on the simulated SIMT machine.
//!
//! ```text
//! usimt asm <file.s>                       # assemble, print listing + resources
//! usimt run <file.s> [options]             # run on the simulator
//! usimt extract <file.s> <loop-label>      # auto-split a loop into μ-kernels
//!
//! run options:
//!   --threads N        launch threads (default 64)
//!   --block N          threads per block (default 64; multiple of 32)
//!   --entry NAME       entry kernel (default "main")
//!   --cycles N         cycle budget (default 100000000)
//!   --dmk              enable dynamic μ-kernel hardware
//!   --state-bytes N    spawn state record size (with --dmk, default 48)
//!   --alloc-global N   pre-allocate N bytes of global memory at address 0
//!   --dump-global A N  after the run, print N words from global address A
//!   --csv FILE         write the divergence timeline as CSV
//! ```

use std::process::ExitCode;
use usimt::dmk::DmkConfig;
use usimt::sim::{Gpu, GpuConfig, Launch};

fn usage() -> ExitCode {
    eprintln!("usage: usimt <asm|run|extract> <file.s> [options] (see source header)");
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (Some(cmd), Some(path)) = (args.first(), args.get(1)) else {
        return usage();
    };
    let src = match std::fs::read_to_string(path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: cannot read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let program = match usimt::isa::assemble_named(path, &src) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("assembly error: {e}");
            return ExitCode::FAILURE;
        }
    };

    match cmd.as_str() {
        "asm" => {
            println!("{program}");
            let r = program.resource_usage();
            println!("registers: {}", r.registers);
            println!(
                "encoded size: {} bytes",
                usimt::isa::encoded_bytes(&program)
            );
            println!("entry points: {:?}", program.entry_points());
            println!("spawn sites: {:?}", program.spawn_sites());
            ExitCode::SUCCESS
        }
        "extract" => {
            let Some(label) = args.get(2) else {
                eprintln!("usage: usimt extract <file.s> <loop-label>");
                return ExitCode::from(2);
            };
            match usimt::dmk::extract_loop(&program, label, usimt::dmk::ExtractOptions::default()) {
                Ok(p) => {
                    println!("{p}");
                    println!(
                        "state record: {} bytes; entry points: {:?}",
                        p.resource_usage().spawn_state_bytes,
                        p.entry_points().iter().map(|e| &e.name).collect::<Vec<_>>()
                    );
                    ExitCode::SUCCESS
                }
                Err(e) => {
                    eprintln!("extraction failed: {e}");
                    ExitCode::FAILURE
                }
            }
        }
        "run" => {
            let mut threads = 64u32;
            let mut block = 64u32;
            let mut entry = "main".to_string();
            let mut cycles = 100_000_000u64;
            let mut dmk = false;
            let mut state_bytes = 48u32;
            let mut alloc_global = 0u32;
            let mut dump: Option<(u32, u32)> = None;
            let mut csv: Option<String> = None;
            let mut i = 2;
            let parse = |s: Option<&String>| s.and_then(|v| v.parse::<u64>().ok());
            while i < args.len() {
                match args[i].as_str() {
                    "--threads" => {
                        i += 1;
                        threads = parse(args.get(i)).unwrap_or(64) as u32;
                    }
                    "--block" => {
                        i += 1;
                        block = parse(args.get(i)).unwrap_or(64) as u32;
                    }
                    "--entry" => {
                        i += 1;
                        entry = args.get(i).cloned().unwrap_or_else(|| "main".into());
                    }
                    "--cycles" => {
                        i += 1;
                        cycles = parse(args.get(i)).unwrap_or(100_000_000);
                    }
                    "--dmk" => dmk = true,
                    "--state-bytes" => {
                        i += 1;
                        state_bytes = parse(args.get(i)).unwrap_or(48) as u32;
                    }
                    "--alloc-global" => {
                        i += 1;
                        alloc_global = parse(args.get(i)).unwrap_or(0) as u32;
                    }
                    "--dump-global" => {
                        let a = parse(args.get(i + 1)).unwrap_or(0) as u32;
                        let n = parse(args.get(i + 2)).unwrap_or(0) as u32;
                        dump = Some((a, n));
                        i += 2;
                    }
                    "--csv" => {
                        i += 1;
                        csv = args.get(i).cloned();
                    }
                    other => {
                        eprintln!("unknown option {other}");
                        return usage();
                    }
                }
                i += 1;
            }

            let cfg = if dmk {
                let d = DmkConfig {
                    state_bytes,
                    num_ukernels: (program.spawn_targets().len() as u32 + 1).max(2),
                    ..DmkConfig::paper()
                };
                GpuConfig::fx5800_dmk(d)
            } else {
                GpuConfig::fx5800()
            };
            let mut gpu = Gpu::builder(cfg).build();
            if alloc_global > 0 {
                gpu.mem_mut().alloc_global(alloc_global, "cli");
            }
            if let Err(e) = gpu.launch(Launch {
                program,
                entry,
                num_threads: threads,
                threads_per_block: block,
            }) {
                eprintln!("launch rejected: {e}");
                std::process::exit(2);
            }
            let summary = match gpu.run(cycles) {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("simulation fault: {e}");
                    std::process::exit(3);
                }
            };
            match &summary.outcome {
                usimt::sim::RunOutcome::Deadlock { diagnostics } => {
                    println!("outcome: Deadlock\n{diagnostics}");
                }
                other => println!("outcome: {other:?}"),
            }
            println!("{}", summary.stats);
            println!("-- memory traffic --\n{}", summary.traffic);
            if let Some((addr, n)) = dump {
                println!("-- global[{addr:#x}..] --");
                for w in 0..n {
                    let a = addr + w * 4;
                    println!(
                        "  {a:#010x}: {:#010x}",
                        gpu.mem().read_u32(usimt::isa::Space::Global, a)
                    );
                }
            }
            if let Some(path) = csv {
                if let Err(e) = std::fs::write(&path, summary.stats.divergence.to_csv()) {
                    eprintln!("cannot write {path}: {e}");
                    return ExitCode::FAILURE;
                }
                println!("wrote divergence timeline to {path}");
            }
            ExitCode::SUCCESS
        }
        _ => usage(),
    }
}
