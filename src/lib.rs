//! # usimt — Dynamic μ-Kernels for SIMT Processors
//!
//! Umbrella crate re-exporting the full reproduction of Steffen & Zambreno,
//! *"Improving SIMT Efficiency of Global Rendering Algorithms with
//! Architectural Support for Dynamic Micro-Kernels"* (MICRO 2010).
//!
//! Downstream users typically depend on this crate and use:
//!
//! * [`isa`] — the PTX-like instruction set, assembler and CFG analyses;
//! * [`mem`] — the banked GPU memory-subsystem model;
//! * [`dmk`] — the paper's contribution: spawn LUT, warp formation, spawn memory;
//! * [`sim`] — the cycle-level SIMT simulator (PDOM, block/warp scheduling, MIMD);
//! * [`raytrace`] — the ray-tracing substrate (kd-tree, Wald test, scenes);
//! * [`kernels`] — the two benchmark device kernels and scene serialization;
//! * [`experiments`] — runners regenerating each paper table/figure.
//!
//! See `examples/quickstart.rs` for a end-to-end render on the simulator.

#![forbid(unsafe_code)]

pub use dmk_core as dmk;
pub use experiments;
pub use raytrace;
pub use rt_kernels as kernels;
pub use simt_isa as isa;
pub use simt_mem as mem;
pub use simt_sim as sim;
